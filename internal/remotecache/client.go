package remotecache

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ClientConfig tunes the replica-side client.
type ClientConfig struct {
	// Addr is the daemon's host:port. Required.
	Addr string
	// Timeout bounds one dial-plus-round-trip. <= 0 means 250ms — the
	// remote tier sits between a disk miss and a solve that costs
	// milliseconds to seconds, so a slow daemon must degrade to a miss
	// quickly rather than stall the ladder.
	Timeout time.Duration
	// PoolSize caps idle pooled connections. <= 0 means 4.
	PoolSize int
}

// ErrCorrupt is returned by Get when the daemon answered with bytes
// that fail the seal check; the caller must treat it as a miss.
var ErrCorrupt = errors.New("remotecache: value failed checksum")

// Client is a pooled, deadline-guarded client for one daemon. It is
// safe for concurrent use; each op checks a connection out of the pool
// (dialing on empty) and returns it only after a clean round trip.
type Client struct {
	cfg ClientConfig

	mu     sync.Mutex
	idle   []net.Conn
	closed bool
}

// NewClient returns a client; no connection is made until the first op.
func NewClient(cfg ClientConfig) *Client {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 250 * time.Millisecond
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 4
	}
	return &Client{cfg: cfg}
}

// Get fetches and opens the sealed value for key. ok reports a verified
// hit. A checksum failure returns (nil, false, ErrCorrupt): counted by
// the caller, never served.
func (c *Client) Get(key string) (body []byte, ok bool, err error) {
	status, val, err := c.roundTrip(OpGet, key, nil)
	if err != nil {
		return nil, false, err
	}
	switch status {
	case StatusHit:
		body, ok := Open(val)
		if !ok {
			return nil, false, ErrCorrupt
		}
		return body, true, nil
	case StatusMiss:
		return nil, false, nil
	case StatusError:
		return nil, false, fmt.Errorf("remotecache: daemon error: %s", val)
	default:
		return nil, false, fmt.Errorf("%w (unexpected status %q for get)", ErrFrame, string(status))
	}
}

// Put seals body and stores it under key.
func (c *Client) Put(key string, body []byte) error {
	status, val, err := c.roundTrip(OpPut, key, Seal(body))
	if err != nil {
		return err
	}
	switch status {
	case StatusOK:
		return nil
	case StatusError:
		return fmt.Errorf("remotecache: daemon error: %s", val)
	default:
		return fmt.Errorf("%w (unexpected status %q for put)", ErrFrame, string(status))
	}
}

// Stats fetches the daemon's counters.
func (c *Client) Stats() (ServerStats, error) {
	status, val, err := c.roundTrip(OpStats, "", nil)
	if err != nil {
		return ServerStats{}, err
	}
	switch status {
	case StatusStats:
		var st ServerStats
		if err := json.Unmarshal(val, &st); err != nil {
			return ServerStats{}, fmt.Errorf("remotecache: stats decode: %w", err)
		}
		return st, nil
	case StatusError:
		return ServerStats{}, fmt.Errorf("remotecache: daemon error: %s", val)
	default:
		return ServerStats{}, fmt.Errorf("%w (unexpected status %q for stats)", ErrFrame, string(status))
	}
}

// Close drops pooled connections. In-flight ops finish on their own
// checked-out connections.
func (c *Client) Close() {
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.closed = true
	c.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
	}
}

func (c *Client) roundTrip(op byte, key string, val []byte) (byte, []byte, error) {
	deadline := time.Now().Add(c.cfg.Timeout)
	conn, err := c.checkout(deadline)
	if err != nil {
		return 0, nil, err
	}
	frame, err := AppendRequest(nil, op, key, val)
	if err != nil {
		c.checkin(conn, err)
		return 0, nil, err
	}
	conn.SetDeadline(deadline)
	if _, err := conn.Write(frame); err != nil {
		c.checkin(conn, err)
		return 0, nil, err
	}
	status, body, err := ReadResponse(conn)
	c.checkin(conn, err)
	if err != nil {
		return 0, nil, err
	}
	return status, body, nil
}

func (c *Client) checkout(deadline time.Time) (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("remotecache: client closed")
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	d := net.Dialer{Deadline: deadline}
	return d.Dial("tcp", c.cfg.Addr)
}

// checkin returns a healthy connection to the pool; one that saw any
// error is closed, since frame alignment can no longer be trusted.
func (c *Client) checkin(conn net.Conn, err error) {
	if err != nil {
		conn.Close()
		return
	}
	c.mu.Lock()
	if !c.closed && len(c.idle) < c.cfg.PoolSize {
		c.idle = append(c.idle, conn)
		conn = nil
	}
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}
