package remotecache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []struct {
		op  byte
		key string
		val []byte
	}{
		{OpGet, "k", nil},
		{OpGet, strings.Repeat("a", MaxKeyLen), nil},
		{OpPut, "key-1", []byte("value bytes")},
		{OpPut, "k", []byte{}},
		{OpStats, "", nil},
	}
	for _, tc := range cases {
		frame, err := AppendRequest(nil, tc.op, tc.key, tc.val)
		if err != nil {
			t.Fatalf("append op %c: %v", tc.op, err)
		}
		op, key, val, err := ReadRequest(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("read op %c: %v", tc.op, err)
		}
		if op != tc.op || key != tc.key || !bytes.Equal(val, tc.val) {
			t.Fatalf("round trip %c/%q: got %c/%q/%q", tc.op, tc.key, op, key, val)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []struct {
		status byte
		val    []byte
	}{
		{StatusHit, []byte("sealed")},
		{StatusMiss, nil},
		{StatusOK, nil},
		{StatusStats, []byte(`{"gets":1}`)},
		{StatusError, []byte("boom")},
	}
	for _, tc := range cases {
		frame, err := AppendResponse(nil, tc.status, tc.val)
		if err != nil {
			t.Fatalf("append status %c: %v", tc.status, err)
		}
		status, val, err := ReadResponse(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("read status %c: %v", tc.status, err)
		}
		if status != tc.status || !bytes.Equal(val, tc.val) {
			t.Fatalf("round trip %c: got %c/%q", tc.status, status, val)
		}
	}
}

// TestHostileFramesRejected: every malformed frame must yield an
// ErrFrame-wrapped error — never a panic, never a partial success —
// and oversized declarations must be rejected from the header alone,
// before any allocation or body read.
func TestHostileFramesRejected(t *testing.T) {
	hdr := func(op byte, keyLen uint16, valLen uint32) []byte {
		b := make([]byte, reqHeaderLen)
		b[0] = op
		binary.BigEndian.PutUint16(b[1:3], keyLen)
		binary.BigEndian.PutUint32(b[3:7], valLen)
		return b
	}
	cases := []struct {
		name  string
		frame []byte
	}{
		{"unknown op", hdr('X', 1, 0)},
		{"oversized key", hdr(OpGet, MaxKeyLen+1, 0)},
		{"oversized value", hdr(OpPut, 1, MaxValueLen+1)},
		{"get with value", hdr(OpGet, 1, 1)},
		{"stats with key", hdr(OpStats, 1, 0)},
		{"stats with value", hdr(OpStats, 0, 4)},
		{"get with empty key", hdr(OpGet, 0, 0)},
		{"put with empty key", hdr(OpPut, 0, 4)},
		{"max uint32 value", hdr(OpPut, 1, 1<<32-1)},
	}
	for _, tc := range cases {
		// The header alone must be decisive: no case above may block
		// reading a body, so a reader that stops at the header proves the
		// reject happened before any allocation-sized read.
		_, _, _, err := ReadRequest(bytes.NewReader(tc.frame))
		if !errors.Is(err, ErrFrame) {
			t.Errorf("%s: err = %v, want ErrFrame", tc.name, err)
		}
	}

	// Truncated frames are I/O errors (unexpected EOF), not ErrFrame —
	// the peer died, it did not speak garbage.
	valid, _ := AppendRequest(nil, OpPut, "key", []byte("value"))
	for cut := 1; cut < len(valid); cut++ {
		_, _, _, err := ReadRequest(bytes.NewReader(valid[:cut]))
		if err == nil {
			t.Fatalf("truncated frame at %d accepted", cut)
		}
		if errors.Is(err, ErrFrame) && cut >= reqHeaderLen {
			t.Fatalf("truncated body at %d misreported as a protocol violation: %v", cut, err)
		}
	}

	// Response side: unknown status, oversized value, value on a
	// valueless status.
	rhdr := func(status byte, valLen uint32) []byte {
		b := make([]byte, respHeaderLen)
		b[0] = status
		binary.BigEndian.PutUint32(b[1:5], valLen)
		return b
	}
	for _, tc := range []struct {
		name  string
		frame []byte
	}{
		{"unknown status", rhdr('Z', 0)},
		{"oversized value", rhdr(StatusHit, MaxValueLen+1)},
		{"miss with value", rhdr(StatusMiss, 1)},
		{"ok with value", rhdr(StatusOK, 8)},
	} {
		_, _, err := ReadResponse(bytes.NewReader(tc.frame))
		if !errors.Is(err, ErrFrame) {
			t.Errorf("%s: err = %v, want ErrFrame", tc.name, err)
		}
	}
}

func TestAppendRejectsOversized(t *testing.T) {
	if _, err := AppendRequest(nil, OpGet, strings.Repeat("k", MaxKeyLen+1), nil); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized key accepted: %v", err)
	}
	if _, err := AppendRequest(nil, OpPut, "k", make([]byte, MaxValueLen+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized value accepted: %v", err)
	}
	if _, err := AppendResponse(nil, StatusHit, make([]byte, MaxValueLen+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized response accepted: %v", err)
	}
}

func TestSealOpen(t *testing.T) {
	for _, body := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 1000)} {
		sealed := Seal(body)
		if len(sealed) != sha256.Size+len(body) {
			t.Fatalf("sealed length %d, want %d", len(sealed), sha256.Size+len(body))
		}
		got, ok := Open(sealed)
		if !ok || !bytes.Equal(got, body) {
			t.Fatalf("open(seal(%q)) = %q, %v", body, got, ok)
		}
	}

	// Every single-bit flip anywhere in the sealed value must be caught.
	sealed := Seal([]byte("the schedule result bytes"))
	for i := range sealed {
		mut := append([]byte(nil), sealed...)
		mut[i] ^= 0x80
		if _, ok := Open(mut); ok {
			t.Fatalf("bit flip at byte %d went undetected", i)
		}
	}
	// Every truncation too.
	for cut := 0; cut < len(sealed); cut++ {
		if _, ok := Open(sealed[:cut]); ok {
			t.Fatalf("truncation to %d bytes went undetected", cut)
		}
	}
}

// FuzzReadRequest feeds arbitrary bytes to the request reader: it must
// never panic and every non-I/O failure must be a structured ErrFrame.
func FuzzReadRequest(f *testing.F) {
	seed, _ := AppendRequest(nil, OpPut, "some-key", []byte("some-value"))
	f.Add(seed)
	get, _ := AppendRequest(nil, OpGet, "k", nil)
	f.Add(get)
	stats, _ := AppendRequest(nil, OpStats, "", nil)
	f.Add(stats)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		op, key, val, err := ReadRequest(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrFrame) && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("unstructured error %v", err)
			}
			return
		}
		// An accepted frame must re-encode to a prefix of the input.
		out, aerr := AppendRequest(nil, op, key, val)
		if aerr != nil {
			t.Fatalf("accepted frame refuses to re-encode: %v", aerr)
		}
		if !bytes.HasPrefix(data, out) {
			t.Fatalf("re-encoded frame is not a prefix of the input")
		}
	})
}

// FuzzReadResponse is the response-side twin.
func FuzzReadResponse(f *testing.F) {
	hit, _ := AppendResponse(nil, StatusHit, Seal([]byte("v")))
	f.Add(hit)
	miss, _ := AppendResponse(nil, StatusMiss, nil)
	f.Add(miss)
	f.Add([]byte{})
	f.Add([]byte{'E', 0, 0, 0, 3, 'b', 'a', 'd'})
	f.Fuzz(func(t *testing.T, data []byte) {
		status, val, err := ReadResponse(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrFrame) && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("unstructured error %v", err)
			}
			return
		}
		out, aerr := AppendResponse(nil, status, val)
		if aerr != nil {
			t.Fatalf("accepted frame refuses to re-encode: %v", aerr)
		}
		if !bytes.HasPrefix(data, out) {
			t.Fatalf("re-encoded frame is not a prefix of the input")
		}
	})
}

// FuzzSealOpen: Open must never panic and must accept exactly the values
// Seal produces.
func FuzzSealOpen(f *testing.F) {
	f.Add([]byte("body"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if body, ok := Open(data); ok {
			// Anything Open accepts must re-seal to the identical bytes.
			if !bytes.Equal(Seal(body), data) {
				t.Fatal("Open accepted a value Seal would not produce")
			}
		}
		if got, ok := Open(Seal(data)); !ok || !bytes.Equal(got, data) {
			t.Fatal("Seal/Open round trip failed")
		}
	})
}
