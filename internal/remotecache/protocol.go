// Package remotecache is the shared remote tier of the scheduling fleet:
// a small daemon (cmd/dtcached) holding content-addressed response bytes
// behind a length-prefixed get/put protocol, and the pooled client the
// dtserve replicas slot into their tier ladder as memory → disk → remote
// → solve. Results are deterministic bytes keyed by the SHA-256 content
// address the service already mints, so replication needs no invalidation
// protocol: a key's bytes are immutable, any replica may write them, and
// every replica reads the same value.
//
// Integrity contract: the daemon stores values as opaque bytes, but the
// client seals every value with a leading SHA-256 of the body and
// verifies it on read. A flipped bit, a truncated value or a hostile
// daemon therefore degrades to a counted miss on the reading replica —
// corrupt bytes are never served (the same rule the disk tier enforces
// with its on-disk checksums).
//
// Wire protocol (all integers big-endian):
//
//	request:  op(1) | keyLen(2) | valLen(4) | key | val
//	response: status(1) | valLen(4) | val
//
// Ops: 'G' get (valLen 0), 'P' put, 'S' stats (keyLen and valLen 0).
// Statuses: 'H' hit (val = sealed value), 'M' miss, 'O' put accepted,
// 'T' stats (val = JSON ServerStats), 'E' error (val = message).
// Lengths are validated against MaxKeyLen/MaxValueLen before any
// allocation, so a hostile frame yields a structured error, never a
// panic or an attacker-sized buffer.
package remotecache

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol ops.
const (
	OpGet   = byte('G')
	OpPut   = byte('P')
	OpStats = byte('S')
)

// Response statuses.
const (
	StatusHit   = byte('H')
	StatusMiss  = byte('M')
	StatusOK    = byte('O')
	StatusStats = byte('T')
	StatusError = byte('E')
)

// MaxKeyLen bounds the key field. Content addresses are 49 bytes
// ("%016x-" + 32 hex chars); the headroom keeps the protocol usable for
// other addressing schemes without admitting attacker-sized keys.
const MaxKeyLen = 256

// MaxValueLen bounds the value field: the service's own request bodies
// are capped at 32 MiB, responses are of the same order, and the seal
// header adds sha256.Size. A frame announcing more is rejected before
// any allocation.
const MaxValueLen = 32<<20 + sha256.Size

// reqHeaderLen and respHeaderLen are the fixed-size frame prefixes.
const (
	reqHeaderLen  = 1 + 2 + 4
	respHeaderLen = 1 + 4
)

// ErrFrame marks every malformed-frame error, so callers can tell a
// protocol violation (close the connection) from an I/O error
// (errors.Is on both works through the wrapping).
var ErrFrame = errors.New("remotecache: malformed frame")

// ErrTooLarge marks frames whose declared lengths exceed the protocol
// bounds. It wraps ErrFrame.
var ErrTooLarge = fmt.Errorf("%w: length exceeds protocol bound", ErrFrame)

// AppendRequest frames one request onto dst and returns the extended
// slice. It validates lengths, so a caller cannot emit a frame the other
// side must reject.
func AppendRequest(dst []byte, op byte, key string, val []byte) ([]byte, error) {
	if len(key) > MaxKeyLen {
		return dst, fmt.Errorf("%w (key %d > %d)", ErrTooLarge, len(key), MaxKeyLen)
	}
	if len(val) > MaxValueLen {
		return dst, fmt.Errorf("%w (value %d > %d)", ErrTooLarge, len(val), MaxValueLen)
	}
	var hdr [reqHeaderLen]byte
	hdr[0] = op
	binary.BigEndian.PutUint16(hdr[1:3], uint16(len(key)))
	binary.BigEndian.PutUint32(hdr[3:7], uint32(len(val)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, key...)
	dst = append(dst, val...)
	return dst, nil
}

// ReadRequest reads one request frame. Lengths are validated against the
// protocol bounds before the key or value is allocated, so hostile
// frames cost at most the fixed header read. Returns (op, key, val);
// errors wrap ErrFrame for protocol violations, or are plain I/O errors.
func ReadRequest(r io.Reader) (op byte, key string, val []byte, err error) {
	var hdr [reqHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, "", nil, err
	}
	op = hdr[0]
	switch op {
	case OpGet, OpPut, OpStats:
	default:
		return 0, "", nil, fmt.Errorf("%w (unknown op 0x%02x)", ErrFrame, op)
	}
	keyLen := int(binary.BigEndian.Uint16(hdr[1:3]))
	valLen := int(binary.BigEndian.Uint32(hdr[3:7]))
	if keyLen > MaxKeyLen {
		return 0, "", nil, fmt.Errorf("%w (key %d > %d)", ErrTooLarge, keyLen, MaxKeyLen)
	}
	if valLen > MaxValueLen {
		return 0, "", nil, fmt.Errorf("%w (value %d > %d)", ErrTooLarge, valLen, MaxValueLen)
	}
	if op != OpPut && valLen != 0 {
		return 0, "", nil, fmt.Errorf("%w (op %q carries a value)", ErrFrame, string(op))
	}
	if op != OpPut && op != OpGet && keyLen != 0 {
		return 0, "", nil, fmt.Errorf("%w (op %q carries a key)", ErrFrame, string(op))
	}
	if (op == OpGet || op == OpPut) && keyLen == 0 {
		return 0, "", nil, fmt.Errorf("%w (op %q with empty key)", ErrFrame, string(op))
	}
	buf := make([]byte, keyLen+valLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, "", nil, err
	}
	return op, string(buf[:keyLen]), buf[keyLen:], nil
}

// AppendResponse frames one response onto dst.
func AppendResponse(dst []byte, status byte, val []byte) ([]byte, error) {
	if len(val) > MaxValueLen {
		return dst, fmt.Errorf("%w (value %d > %d)", ErrTooLarge, len(val), MaxValueLen)
	}
	var hdr [respHeaderLen]byte
	hdr[0] = status
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(val)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, val...)
	return dst, nil
}

// ReadResponse reads one response frame, with the same bounded-allocation
// discipline as ReadRequest.
func ReadResponse(r io.Reader) (status byte, val []byte, err error) {
	var hdr [respHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	status = hdr[0]
	switch status {
	case StatusHit, StatusMiss, StatusOK, StatusStats, StatusError:
	default:
		return 0, nil, fmt.Errorf("%w (unknown status 0x%02x)", ErrFrame, status)
	}
	valLen := int(binary.BigEndian.Uint32(hdr[1:5]))
	if valLen > MaxValueLen {
		return 0, nil, fmt.Errorf("%w (value %d > %d)", ErrTooLarge, valLen, MaxValueLen)
	}
	switch status {
	case StatusMiss, StatusOK:
		if valLen != 0 {
			return 0, nil, fmt.Errorf("%w (status %q carries a value)", ErrFrame, string(status))
		}
	}
	if valLen == 0 {
		return status, nil, nil
	}
	val = make([]byte, valLen)
	if _, err := io.ReadFull(r, val); err != nil {
		return 0, nil, err
	}
	return status, val, nil
}

// Seal prefixes body with its SHA-256, producing the value the client
// stores. The daemon never interprets it; Open on the reading side is
// what detects corruption, wherever it happened.
func Seal(body []byte) []byte {
	out := make([]byte, sha256.Size+len(body))
	sum := sha256.Sum256(body)
	copy(out, sum[:])
	copy(out[sha256.Size:], body)
	return out
}

// Open verifies a sealed value and returns the body; ok is false for
// truncated or checksum-mismatched data. The returned body aliases val.
func Open(val []byte) (body []byte, ok bool) {
	if len(val) < sha256.Size {
		return nil, false
	}
	body = val[sha256.Size:]
	sum := sha256.Sum256(body)
	for i := range sum {
		if sum[i] != val[i] {
			return nil, false
		}
	}
	return body, true
}
