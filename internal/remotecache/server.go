package remotecache

import (
	"container/list"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"
)

// ServerConfig tunes the daemon. The zero value is usable.
type ServerConfig struct {
	// MaxBytes is the value-byte budget; least-recently-used entries are
	// evicted past it. <= 0 means 256 MiB.
	MaxBytes int64
	// IdleTimeout closes connections with no frame activity. <= 0 means
	// 5 minutes.
	IdleTimeout time.Duration
	// Logger receives structured connection/error logs; nil discards.
	Logger *slog.Logger
}

// ServerStats is a point-in-time snapshot of daemon counters, also
// returned over the wire for an OpStats frame.
type ServerStats struct {
	Gets      uint64 `json:"gets"`
	Puts      uint64 `json:"puts"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	BadFrames uint64 `json:"bad_frames"`
	Conns     uint64 `json:"conns"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
}

// Server is the dtcached daemon: a byte-budgeted LRU of opaque sealed
// values behind the frame protocol. One goroutine serves each
// connection; the store is a single mutex-guarded map + intrusive list,
// which at cache-value sizes is dominated by network time.
type Server struct {
	cfg ServerConfig

	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recent
	bytes   int64
	stats   ServerStats

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	ln     net.Listener
	closed bool

	wg sync.WaitGroup
}

type serverEntry struct {
	key string
	val []byte
}

// NewServer returns an idle daemon; pair with Serve or ListenAndServe.
func NewServer(cfg ServerConfig) *Server {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 256 << 20
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 5 * time.Minute
	}
	return &Server{
		cfg:     cfg,
		entries: make(map[string]*list.Element),
		order:   list.New(),
		conns:   make(map[net.Conn]struct{}),
	}
}

// ListenAndServe binds addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr reports the bound listen address, or "" before Serve.
func (s *Server) Addr() string {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections on ln until Close. It returns nil after a
// Close-initiated shutdown, or the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		ln.Close()
		return errors.New("remotecache: server closed")
	}
	s.ln = ln
	s.connMu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.connMu.Lock()
			closed := s.closed
			s.connMu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.connMu.Lock()
		if s.closed {
			s.connMu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.mu.Lock()
		s.stats.Conns++
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Close stops accepting, severs live connections and waits for their
// goroutines. Cache gets are sub-millisecond, so hard-closing is the
// clean drain: no frame is left half-written because each response is
// one Write call.
func (s *Server) Close() error {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Stats snapshots the counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Bytes = s.bytes
	st.MaxBytes = s.cfg.MaxBytes
	return st
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()

	var out []byte
	for {
		conn.SetDeadline(time.Now().Add(s.cfg.IdleTimeout))
		op, key, val, err := ReadRequest(conn)
		if err != nil {
			if errors.Is(err, ErrFrame) {
				// Protocol violation: answer with a structured error so a
				// confused client sees why, then drop the connection —
				// framing is unrecoverable once misaligned.
				s.mu.Lock()
				s.stats.BadFrames++
				s.mu.Unlock()
				out, _ = AppendResponse(out[:0], StatusError, []byte(err.Error()))
				conn.Write(out)
				if l := s.cfg.Logger; l != nil {
					l.Warn("remotecache bad frame", "remote", conn.RemoteAddr().String(), "err", err)
				}
			} else if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				if l := s.cfg.Logger; l != nil {
					l.Debug("remotecache conn read", "remote", conn.RemoteAddr().String(), "err", err)
				}
			}
			return
		}

		switch op {
		case OpGet:
			if v, ok := s.get(key); ok {
				out, _ = AppendResponse(out[:0], StatusHit, v)
			} else {
				out, _ = AppendResponse(out[:0], StatusMiss, nil)
			}
		case OpPut:
			s.put(key, val)
			out, _ = AppendResponse(out[:0], StatusOK, nil)
		case OpStats:
			body, err := json.Marshal(s.Stats())
			if err != nil {
				out, _ = AppendResponse(out[:0], StatusError, []byte(err.Error()))
			} else {
				out, _ = AppendResponse(out[:0], StatusStats, body)
			}
		}
		if _, err := conn.Write(out); err != nil {
			return
		}
	}
}

func (s *Server) get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Gets++
	el, ok := s.entries[key]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	s.stats.Hits++
	s.order.MoveToFront(el)
	return el.Value.(*serverEntry).val, true
}

func (s *Server) put(key string, val []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Puts++
	if el, ok := s.entries[key]; ok {
		// Content-addressed values are immutable; a re-put just refreshes
		// recency (and tolerates a differing value from a buggy writer by
		// keeping the incumbent — first write wins, like the disk tier).
		s.order.MoveToFront(el)
		return
	}
	e := &serverEntry{key: key, val: val}
	s.entries[key] = s.order.PushFront(e)
	s.bytes += int64(len(val))
	for s.bytes > s.cfg.MaxBytes && s.order.Len() > 1 {
		back := s.order.Back()
		old := back.Value.(*serverEntry)
		s.order.Remove(back)
		delete(s.entries, old.key)
		s.bytes -= int64(len(old.val))
		s.stats.Evictions++
	}
}
