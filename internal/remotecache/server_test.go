package remotecache

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"
)

func startServer(t *testing.T, cfg ServerConfig) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(cfg)
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func TestClientServerRoundTrip(t *testing.T) {
	srv, addr := startServer(t, ServerConfig{})
	c := NewClient(ClientConfig{Addr: addr})
	defer c.Close()

	if _, ok, err := c.Get("absent"); err != nil || ok {
		t.Fatalf("cold get: ok=%v err=%v, want miss", ok, err)
	}
	body := []byte("deterministic schedule result")
	if err := c.Put("key-1", body); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get("key-1")
	if err != nil || !ok || !bytes.Equal(got, body) {
		t.Fatalf("warm get: %q ok=%v err=%v", got, ok, err)
	}

	// The same pooled connection serves many round trips.
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("loop-%d", i)
		if err := c.Put(key, []byte(key)); err != nil {
			t.Fatal(err)
		}
		got, ok, err := c.Get(key)
		if err != nil || !ok || string(got) != key {
			t.Fatalf("key %d: %q ok=%v err=%v", i, got, ok, err)
		}
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Puts != 21 || st.Hits != 21 || st.Misses != 1 {
		t.Fatalf("daemon stats %+v, want 21 puts / 21 hits / 1 miss", st)
	}
	if local := srv.Stats(); local != st {
		t.Fatalf("wire stats %+v != local stats %+v", st, local)
	}
}

func TestServerFirstWriteWins(t *testing.T) {
	_, addr := startServer(t, ServerConfig{})
	c := NewClient(ClientConfig{Addr: addr})
	defer c.Close()

	if err := c.Put("k", []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k", []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := c.Get("k")
	if !ok || string(got) != "first" {
		t.Fatalf("got %q, want the first write to win", got)
	}
}

func TestServerEvictsLRU(t *testing.T) {
	// Values are ~1KiB sealed; a 4KiB budget holds only a few.
	srv, addr := startServer(t, ServerConfig{MaxBytes: 4 << 10})
	c := NewClient(ClientConfig{Addr: addr})
	defer c.Close()

	val := bytes.Repeat([]byte("v"), 1<<10)
	for i := 0; i < 8; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.Evictions == 0 {
		t.Fatal("no eviction despite exceeding the byte budget")
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("stored bytes %d exceed the budget %d", st.Bytes, st.MaxBytes)
	}
	// The newest key survives, the oldest is gone.
	if _, ok, _ := c.Get("k7"); !ok {
		t.Fatal("most recent key was evicted")
	}
	if _, ok, _ := c.Get("k0"); ok {
		t.Fatal("least recent key survived a full LRU sweep")
	}
}

// TestServerBadFrame: a protocol violation gets a StatusError response
// with a message, is counted, and costs the connection — but not the
// daemon.
func TestServerBadFrame(t *testing.T) {
	srv, addr := startServer(t, ServerConfig{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Unknown op 'X' with a plausible header.
	if _, err := conn.Write([]byte{'X', 0, 1, 0, 0, 0, 0, 'k'}); err != nil {
		t.Fatal(err)
	}
	status, msg, err := ReadResponse(conn)
	if err != nil || status != StatusError || len(msg) == 0 {
		t.Fatalf("bad frame answer: status %c, msg %q, err %v", status, msg, err)
	}
	// The connection is then closed server-side.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, _, err := ReadResponse(conn); err == nil {
		t.Fatal("connection stayed open after a protocol violation")
	}
	if st := srv.Stats(); st.BadFrames != 1 {
		t.Fatalf("bad frames = %d, want 1", st.BadFrames)
	}

	// The daemon still serves a well-behaved client.
	c := NewClient(ClientConfig{Addr: addr})
	defer c.Close()
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get("k"); !ok || err != nil {
		t.Fatalf("daemon unhealthy after bad frame: ok=%v err=%v", ok, err)
	}
}

// TestClientDetectsCorruption: a daemon (or network) that hands back
// damaged sealed bytes yields ErrCorrupt, never a body.
func TestClientDetectsCorruption(t *testing.T) {
	_, addr := startServer(t, ServerConfig{})

	// Plant a damaged sealed value via a raw connection.
	sealed := Seal([]byte("honest body"))
	sealed[len(sealed)-1] ^= 0xff
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	frame, _ := AppendRequest(nil, OpPut, "poisoned", sealed)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if status, _, err := ReadResponse(conn); err != nil || status != StatusOK {
		t.Fatalf("raw put: %c %v", status, err)
	}
	conn.Close()

	c := NewClient(ClientConfig{Addr: addr})
	defer c.Close()
	body, ok, err := c.Get("poisoned")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if ok || body != nil {
		t.Fatalf("corrupt value was served: %q ok=%v", body, ok)
	}
}

func TestClientDeadDaemon(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c := NewClient(ClientConfig{Addr: addr, Timeout: 100 * time.Millisecond})
	defer c.Close()
	start := time.Now()
	if _, ok, err := c.Get("k"); err == nil || ok {
		t.Fatalf("dead daemon get: ok=%v err=%v, want error", ok, err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("dead-daemon get took %s; the timeout is not bounding the dial", d)
	}
	if err := c.Put("k", []byte("v")); err == nil {
		t.Fatal("dead daemon put succeeded")
	}
}

func TestStatsOverWire(t *testing.T) {
	srv, addr := startServer(t, ServerConfig{MaxBytes: 1 << 20})
	c := NewClient(ClientConfig{Addr: addr})
	defer c.Close()
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 1 || st.MaxBytes != 1<<20 {
		t.Fatalf("wire stats %+v", st)
	}
	// And the JSON shape is stable for operators scripting against it.
	raw, err := json.Marshal(srv.Stats())
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"gets", "puts", "hits", "misses", "evictions", "bad_frames", "conns", "entries", "bytes", "max_bytes"} {
		if !bytes.Contains(raw, []byte(`"`+field+`"`)) {
			t.Errorf("stats JSON lacks %q: %s", field, raw)
		}
	}
}

// BenchmarkRemoteGet: one warm get over the wire — frame write, daemon
// lookup, sealed read-back and checksum verify on a pooled connection.
// This is the per-request price a replica pays to consult dtcached.
func BenchmarkRemoteGet(b *testing.B) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(ServerConfig{})
	go srv.Serve(ln)
	defer srv.Close()

	c := NewClient(ClientConfig{Addr: ln.Addr().String()})
	defer c.Close()
	val := bytes.Repeat([]byte("schedule-bytes!!"), 256) // 4 KiB, a typical response
	if err := c.Put("bench-key", val); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, ok, err := c.Get("bench-key")
		if err != nil || !ok || len(got) != len(val) {
			b.Fatalf("get: ok=%v err=%v len=%d", ok, err, len(got))
		}
	}
}
