// Package chaos is the fault-injection harness for the scheduling
// service: it wraps the persistent disk tier, the fleet-shared remote
// tier and any solver with deterministic, seeded fault injectors, so
// tests — and a dtserve operator via the -chaos flag — can prove the
// service degrades gracefully instead of hoping it does.
//
// The harness is plain Go behind public seams
// (service.Config.WrapDiskTier / WrapRemoteTier for the tiers,
// solver.Register for the flaky solver); no build tags, so the injection
// code itself is compiled and vetted on every build and the production
// binary pays a single nil-check when chaos is off.
//
// Invariants the service must keep under any injected fault:
//
//   - a disk- or remote-tier read fault degrades to a cache miss: the
//     request falls back to a solve and answers 200 with byte-identical
//     results;
//   - injected tier faults surface in that tier's Errors counter, so
//     operators see the failure rate in /statsz and /metrics;
//   - the conservation law solves + cache.hits + disk.hits + remote.hits
//   - coalesced == schedule_items holds, fault or no fault;
//   - a flaky solver failure is an ordinary structured error to exactly
//     the requests it hit — never a panic, never a poisoned cache entry.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/machsim"
	"repro/internal/service"
	"repro/internal/solver"
)

// ErrInjected marks every fault this package injects, so tests and error
// chains can tell injected failures from organic ones (errors.Is).
var ErrInjected = errors.New("chaos: injected fault")

// Config tunes the injectors. Rates are probabilities in [0, 1]; delays
// are added before the wrapped call (and honor context cancellation in
// the solver wrapper). The zero value injects nothing.
type Config struct {
	// Seed makes every probabilistic decision reproducible: equal seeds
	// and equal call sequences inject equal faults.
	Seed int64
	// DiskErrRate is the probability a disk-tier Get or Put is faulted:
	// a faulted Get reports a miss, a faulted Put drops the write. Both
	// are counted in the tier's Errors.
	DiskErrRate float64
	// DiskDelay is added to every disk-tier Get, modeling a slow disk.
	DiskDelay time.Duration
	// RemoteErrRate is the probability a remote-tier Get or Put is
	// faulted, modeling a flaky dtcached daemon or network: a faulted Get
	// reports a miss, a faulted Put drops the publish. Both are counted
	// in the tier's Errors.
	RemoteErrRate float64
	// RemoteDelay is added to every remote-tier Get, modeling a slow or
	// distant daemon.
	RemoteDelay time.Duration
	// SolverErrRate is the probability a wrapped solver's Solve fails
	// with an ErrInjected-wrapped error.
	SolverErrRate float64
	// SolverDelay is added before every wrapped solve (cancellable).
	SolverDelay time.Duration
	// SolverJitter spreads SolverDelay uniformly over
	// [delay*(1-j), delay*(1+j)], drawn from the seeded PRNG. Without
	// it a fixed delay marches every pool worker in lockstep — all
	// solves complete simultaneously forever — which no real slow
	// dependency does. In [0, 1]; 0 keeps the delay exact.
	SolverJitter float64
}

// ParseSpec parses the dtserve -chaos flag syntax: comma-separated
// key=value pairs, e.g.
//
//	disk-err=0.2,disk-delay=5ms,solver-err=0.1,solver-delay=1ms,seed=7
//
// Unknown keys, malformed values and out-of-range rates are errors.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, fmt.Errorf("chaos: empty spec")
	}
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return cfg, fmt.Errorf("chaos: field %q is not key=value", field)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("chaos: seed %q: %v", v, err)
			}
			cfg.Seed = n
		case "disk-err", "remote-err", "solver-err", "solver-jitter":
			r, err := strconv.ParseFloat(v, 64)
			if err != nil || !(r >= 0 && r <= 1) { // NaN fails both comparisons
				return cfg, fmt.Errorf("chaos: rate %s=%q out of [0,1]", k, v)
			}
			switch k {
			case "disk-err":
				cfg.DiskErrRate = r
			case "remote-err":
				cfg.RemoteErrRate = r
			case "solver-err":
				cfg.SolverErrRate = r
			case "solver-jitter":
				cfg.SolverJitter = r
			}
		case "disk-delay", "remote-delay", "solver-delay":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return cfg, fmt.Errorf("chaos: delay %s=%q: want a non-negative duration", k, v)
			}
			switch k {
			case "disk-delay":
				cfg.DiskDelay = d
			case "remote-delay":
				cfg.RemoteDelay = d
			default:
				cfg.SolverDelay = d
			}
		default:
			return cfg, fmt.Errorf("chaos: unknown key %q (want seed, disk-err, disk-delay, remote-err, remote-delay, solver-err, solver-delay, solver-jitter)", k)
		}
	}
	return cfg, nil
}

// roller is a mutex-guarded seeded PRNG shared by the injectors.
type roller struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newRoller(seed int64) *roller {
	return &roller{rng: rand.New(rand.NewSource(seed))}
}

// roll reports whether a fault at the given rate fires.
func (r *roller) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Float64() < rate
}

// uniform draws from [0, 1).
func (r *roller) uniform() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Float64()
}

// Tier wraps a service disk tier with fault injection. A faulted Get
// reports a miss (the service then falls back to a solve — graceful
// degradation, not an error surface); a faulted Put drops the write. Both
// are folded into the wrapped tier's Errors stat so the injected failure
// rate is visible wherever disk errors already are.
type Tier struct {
	under service.DiskTier
	cfg   Config
	roll  *roller

	mu        sync.Mutex
	getFaults uint64
	putFaults uint64
}

// NewTier wraps under with fault injection per cfg.
func NewTier(under service.DiskTier, cfg Config) *Tier {
	return &Tier{under: under, cfg: cfg, roll: newRoller(cfg.Seed)}
}

// Get consults the wrapped tier, injecting latency and faults.
func (t *Tier) Get(key string) ([]byte, bool) {
	if t.cfg.DiskDelay > 0 {
		time.Sleep(t.cfg.DiskDelay)
	}
	if t.roll.roll(t.cfg.DiskErrRate) {
		t.mu.Lock()
		t.getFaults++
		t.mu.Unlock()
		return nil, false
	}
	return t.under.Get(key)
}

// Put forwards to the wrapped tier unless a write fault fires.
func (t *Tier) Put(key string, val []byte) {
	if t.roll.roll(t.cfg.DiskErrRate) {
		t.mu.Lock()
		t.putFaults++
		t.mu.Unlock()
		return
	}
	t.under.Put(key, val)
}

// Stats reports the wrapped tier's stats with the injected faults folded
// in: every fault is an error, and a faulted read is also a miss (that is
// exactly how the service experienced it).
func (t *Tier) Stats() service.DiskCacheStats {
	st := t.under.Stats()
	t.mu.Lock()
	defer t.mu.Unlock()
	st.Errors += t.getFaults + t.putFaults
	st.Misses += t.getFaults
	return st
}

// Close closes the wrapped tier.
func (t *Tier) Close() { t.under.Close() }

// Injected returns the injected read and write fault counts.
func (t *Tier) Injected() (gets, puts uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.getFaults, t.putFaults
}

// RemoteTier wraps the service's fleet-shared remote tier with fault
// injection, the same contract as Tier over the disk tier: a faulted Get
// reports a miss (the ladder falls through to the local solve), a
// faulted Put drops the publish, and both fold into the tier's Errors
// stat. It plugs into service.Config.WrapRemoteTier.
type RemoteTier struct {
	under service.RemoteTier
	cfg   Config
	roll  *roller

	mu        sync.Mutex
	getFaults uint64
	putFaults uint64
}

// NewRemoteTier wraps under with fault injection per cfg.
func NewRemoteTier(under service.RemoteTier, cfg Config) *RemoteTier {
	return &RemoteTier{under: under, cfg: cfg, roll: newRoller(cfg.Seed)}
}

// Get consults the wrapped tier, injecting latency and faults.
func (t *RemoteTier) Get(key string) ([]byte, bool) {
	if t.cfg.RemoteDelay > 0 {
		time.Sleep(t.cfg.RemoteDelay)
	}
	if t.roll.roll(t.cfg.RemoteErrRate) {
		t.mu.Lock()
		t.getFaults++
		t.mu.Unlock()
		return nil, false
	}
	return t.under.Get(key)
}

// Put forwards to the wrapped tier unless a write fault fires.
func (t *RemoteTier) Put(key string, val []byte) {
	if t.roll.roll(t.cfg.RemoteErrRate) {
		t.mu.Lock()
		t.putFaults++
		t.mu.Unlock()
		return
	}
	t.under.Put(key, val)
}

// Stats reports the wrapped tier's stats with the injected faults folded
// in, exactly as the service experienced them: every fault is an error
// and a faulted read is also a miss.
func (t *RemoteTier) Stats() service.RemoteCacheStats {
	st := t.under.Stats()
	t.mu.Lock()
	defer t.mu.Unlock()
	st.Errors += t.getFaults + t.putFaults
	st.Misses += t.getFaults
	return st
}

// Close closes the wrapped tier.
func (t *RemoteTier) Close() { t.under.Close() }

// Injected returns the injected read and write fault counts.
func (t *RemoteTier) Injected() (gets, puts uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.getFaults, t.putFaults
}

// FlakySolver wraps a solver with seeded failure injection: each Solve
// first waits out SolverDelay (honoring ctx), then either fails with an
// ErrInjected-wrapped error or delegates to the wrapped solver.
type FlakySolver struct {
	name  string
	under solver.Solver
	cfg   Config
	roll  *roller

	mu       sync.Mutex
	injected uint64
}

// NewFlakySolver builds a registerable flaky wrapper around under. The
// name must be unique in the solver registry (and lower-case).
func NewFlakySolver(name string, under solver.Solver, cfg Config) *FlakySolver {
	return &FlakySolver{name: name, under: under, cfg: cfg, roll: newRoller(cfg.Seed)}
}

// Name implements solver.Solver.
func (f *FlakySolver) Name() string { return f.name }

// Description implements solver.Solver.
func (f *FlakySolver) Description() string {
	return fmt.Sprintf("chaos wrapper around %q (err-rate %g, delay %s)",
		f.under.Name(), f.cfg.SolverErrRate, f.cfg.SolverDelay)
}

// Solve implements solver.Solver with fault injection.
func (f *FlakySolver) Solve(ctx context.Context, req solver.Request) (*machsim.Result, error) {
	if f.cfg.SolverDelay > 0 {
		delay := f.cfg.SolverDelay
		if j := f.cfg.SolverJitter; j > 0 {
			delay = time.Duration((1 - j + 2*j*f.roll.uniform()) * float64(delay))
		}
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
	}
	if f.roll.roll(f.cfg.SolverErrRate) {
		f.mu.Lock()
		f.injected++
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: solver %q failed", ErrInjected, f.name)
	}
	return f.under.Solve(ctx, req)
}

// Injected returns how many solves were failed by injection.
func (f *FlakySolver) Injected() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}
