package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/programs"
	"repro/internal/remotecache"
	"repro/internal/service"
	"repro/internal/solver"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("disk-err=0.2,disk-delay=5ms,solver-err=0.1,solver-delay=1ms,solver-jitter=0.5,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 7, DiskErrRate: 0.2, DiskDelay: 5 * time.Millisecond,
		SolverErrRate: 0.1, SolverDelay: time.Millisecond, SolverJitter: 0.5}
	if cfg != want {
		t.Fatalf("cfg = %+v, want %+v", cfg, want)
	}
	if cfg, err := ParseSpec(" disk-err=1 "); err != nil || cfg.DiskErrRate != 1 {
		t.Fatalf("minimal spec: %+v, %v", cfg, err)
	}
	for _, bad := range []string{
		"", "disk-err", "disk-err=1.5", "disk-err=-0.1", "disk-delay=-5ms",
		"disk-delay=fast", "seed=x", "turbulence=9", "solver-err=NaN",
		"solver-jitter=2", "solver-jitter=NaN",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// buildGraph returns a benchmark program graph for wire requests.
func buildGraph(t *testing.T, key string) *taskgraph.Graph {
	t.Helper()
	prog, err := programs.ByKey(key)
	if err != nil {
		t.Fatal(err)
	}
	return prog.Build()
}

// payload marshals one schedule request for program key and seed.
func payload(t *testing.T, key string, seed int64) []byte {
	t.Helper()
	body, err := json.Marshal(service.ScheduleRequest{
		Graph:  buildGraph(t, key),
		Topo:   "hypercube:3",
		Solver: "hlf",
		Seed:   seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func post(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// checkLaw asserts the conservation law on a stats snapshot.
func checkLaw(t *testing.T, st service.Stats) {
	t.Helper()
	if got := st.Solves + st.Cache.Hits + st.Disk.Hits + st.Remote.Hits + st.Coalesced; got != st.Items {
		t.Fatalf("conservation law broken: solves %d + mem %d + disk %d + remote %d + coalesced %d = %d != items %d",
			st.Solves, st.Cache.Hits, st.Disk.Hits, st.Remote.Hits, st.Coalesced, got, st.Items)
	}
}

// TestDiskFaultFallsBackToSolve is the graceful-degradation proof: a
// warm disk entry whose reads are faulted answers 200 with the
// byte-identical body via a fresh solve, the fault lands in the disk
// tier's Errors, and the conservation law holds.
func TestDiskFaultFallsBackToSolve(t *testing.T) {
	dir := t.TempDir()
	body := payload(t, "FFT", 1991)

	// Warm the disk tier with a healthy server, then stop it (Close
	// drains the write-behind queue, so the entry is durable).
	svc1, err := service.New(service.Config{CacheSize: 64, CacheDir: dir, DefaultSolver: "hlf"})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(svc1.Handler())
	resp, want := post(t, ts1.URL+"/v1/schedule", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm solve: %d %s", resp.StatusCode, want)
	}
	ts1.Close()
	svc1.Close()

	// Restart over the same directory with every disk read faulted: the
	// memory tier is cold, the disk tier has the entry but cannot serve
	// it — the request must degrade to a fresh solve, not an error.
	var tier *Tier
	svc2, err := service.New(service.Config{
		CacheSize: 64, CacheDir: dir, DefaultSolver: "hlf",
		WrapDiskTier: func(under service.DiskTier) service.DiskTier {
			tier = NewTier(under, Config{DiskErrRate: 1, Seed: 1})
			return tier
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(svc2.Handler())
	defer ts2.Close()
	defer svc2.Close()

	resp, got := post(t, ts2.URL+"/v1/schedule", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("faulted-disk solve: %d %s", resp.StatusCode, got)
	}
	if resp.Header.Get("X-DTServe-Cache") != "miss" {
		t.Fatalf("faulted disk read reported cache=%q, want miss", resp.Header.Get("X-DTServe-Cache"))
	}
	if !bytes.Equal(got, want) {
		t.Fatal("fallback solve body differs from the healthy body (determinism broken)")
	}

	gets, _ := tier.Injected()
	if gets == 0 {
		t.Fatal("no disk read fault was injected")
	}
	st := svc2.Stats()
	if st.Disk.Errors < gets {
		t.Fatalf("disk errors %d do not include the %d injected faults", st.Disk.Errors, gets)
	}
	if st.Disk.Hits != 0 {
		t.Fatalf("faulted tier reported %d hits", st.Disk.Hits)
	}
	checkLaw(t, st)
}

// registerFlaky registers the shared flaky test solver once per process
// (the solver registry is global).
var (
	flakyOnce   sync.Once
	flakySolver *FlakySolver
)

func flaky(t *testing.T) *FlakySolver {
	t.Helper()
	flakyOnce.Do(func() {
		under, err := solver.Get("hlf")
		if err != nil {
			t.Fatal(err)
		}
		flakySolver = NewFlakySolver("chaostestflaky", under, Config{SolverErrRate: 0.3, Seed: 11})
		if err := solver.Register(flakySolver); err != nil {
			t.Fatal(err)
		}
	})
	return flakySolver
}

// TestConservationLawUnderMixedFaults floods a chaos-wrapped server with
// repeating payloads while both the disk tier and the solver inject
// faults, and checks the books still balance: every answered item is
// exactly one of solve/mem-hit/disk-hit/coalesced, failed solves are
// clean 4xx/5xx errors, and the injected fault counts surface in stats.
func TestConservationLawUnderMixedFaults(t *testing.T) {
	fl := flaky(t)
	dir := t.TempDir()
	var tier *Tier
	svc, err := service.New(service.Config{
		CacheSize: 64, CacheDir: dir, DefaultSolver: "hlf",
		WrapDiskTier: func(under service.DiskTier) service.DiskTier {
			tier = NewTier(under, Config{DiskErrRate: 0.4, Seed: 42})
			return tier
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Close()

	injectedBefore := fl.Injected()
	ok, failed := 0, 0
	for i := 0; i < 60; i++ {
		prog := []string{"FFT", "NE", "GJ"}[i%3]
		body, err := json.Marshal(service.ScheduleRequest{
			Graph:  buildGraph(t, prog),
			Topo:   "hypercube:3",
			Solver: "chaostestflaky",
			Seed:   int64(i % 6), // repeats exercise every cache tier
		})
		if err != nil {
			t.Fatal(err)
		}
		resp, respBody := post(t, ts.URL+"/v1/schedule", body)
		switch resp.StatusCode {
		case http.StatusOK:
			ok++
		case http.StatusUnprocessableEntity:
			// The injected solver fault: a structured error naming it.
			var er service.ErrorResponse
			if err := json.Unmarshal(respBody, &er); err != nil || er.Error == "" {
				t.Fatalf("flaky failure without a structured body: %s", respBody)
			}
			failed++
		default:
			t.Fatalf("unexpected status %d: %s", resp.StatusCode, respBody)
		}
	}
	if ok == 0 {
		t.Fatal("no request survived the chaos")
	}
	if fl.Injected() == injectedBefore {
		t.Fatal("no solver fault was injected in 60 requests at rate 0.3")
	}
	gets, puts := tier.Injected()
	if gets+puts == 0 {
		t.Fatal("no disk fault was injected")
	}

	st := svc.Stats()
	checkLaw(t, st)
	if st.Disk.Errors < gets+puts {
		t.Fatalf("disk errors %d do not include the %d injected faults", st.Disk.Errors, gets+puts)
	}
	if st.Failures < uint64(failed) {
		t.Fatalf("failures %d < %d observed failed requests", st.Failures, failed)
	}
}

// TestFlakySolverDeterministicBySeed: equal seeds and call sequences
// inject equal fault patterns — the harness is reproducible, not noisy.
func TestFlakySolverDeterministicBySeed(t *testing.T) {
	under, err := solver.Get("hlf")
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	req := solver.Request{
		Graph: buildGraph(t, "NE"),
		Topo:  topo,
		Comm:  topology.DefaultCommParams(),
	}
	pattern := func(seed int64) []bool {
		f := NewFlakySolver("patternprobe", under, Config{SolverErrRate: 0.5, Seed: seed})
		out := make([]bool, 24)
		for i := range out {
			_, err := f.Solve(context.Background(), req)
			if err != nil && !errors.Is(err, ErrInjected) {
				t.Fatalf("call %d: non-injected error %v", i, err)
			}
			out[i] = err != nil
		}
		return out
	}
	a, b := pattern(99), pattern(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d: %v vs %v", i, a, b)
		}
	}
	c := pattern(100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 24-call fault patterns (suspicious)")
	}
}

// startCached runs an in-process dtcached on loopback for remote-tier
// chaos tests.
func startCached(t *testing.T) (*remotecache.Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := remotecache.NewServer(remotecache.ServerConfig{})
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// TestRemoteFaultFallsBackToSolve mirrors the disk proof for the remote
// tier: a warm dtcached entry whose reads are all faulted (and slowed)
// answers 200 with the byte-identical body via a fresh solve, the faults
// land in the remote tier's Errors, and the conservation law holds.
func TestRemoteFaultFallsBackToSolve(t *testing.T) {
	cached, addr := startCached(t)
	body := payload(t, "FFT", 2024)

	// Warm the daemon with a healthy replica, then stop it (Close drains
	// the write-behind publish queue).
	svc1, err := service.New(service.Config{CacheSize: 64, DefaultSolver: "hlf", RemoteAddr: addr})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(svc1.Handler())
	resp, want := post(t, ts1.URL+"/v1/schedule", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm solve: %d %s", resp.StatusCode, want)
	}
	ts1.Close()
	svc1.Close()
	if cached.Stats().Entries == 0 {
		t.Fatal("warm replica published nothing to the daemon")
	}

	// A fresh replica with every remote read faulted: cold memory, cold
	// disk, a daemon that has the answer but cannot deliver it — the
	// request must degrade to a fresh solve, not an error.
	var tier *RemoteTier
	svc2, err := service.New(service.Config{
		CacheSize: 64, DefaultSolver: "hlf", RemoteAddr: addr,
		WrapRemoteTier: func(under service.RemoteTier) service.RemoteTier {
			tier = NewRemoteTier(under, Config{RemoteErrRate: 1, RemoteDelay: time.Millisecond, Seed: 3})
			return tier
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(svc2.Handler())
	defer ts2.Close()
	defer svc2.Close()

	resp, got := post(t, ts2.URL+"/v1/schedule", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("faulted-remote solve: %d %s", resp.StatusCode, got)
	}
	if resp.Header.Get("X-DTServe-Cache") != "miss" {
		t.Fatalf("faulted remote read reported cache=%q, want miss", resp.Header.Get("X-DTServe-Cache"))
	}
	if !bytes.Equal(got, want) {
		t.Fatal("fallback solve body differs from the healthy body (determinism broken)")
	}

	gets, _ := tier.Injected()
	if gets == 0 {
		t.Fatal("no remote read fault was injected")
	}
	st := svc2.Stats()
	if st.Remote.Errors < gets {
		t.Fatalf("remote errors %d do not include the %d injected faults", st.Remote.Errors, gets)
	}
	if st.Remote.Hits != 0 {
		t.Fatalf("faulted tier reported %d hits", st.Remote.Hits)
	}
	checkLaw(t, st)
}

// TestRemoteDaemonDownDegrades points a replica at a dead dtcached
// address: every request still answers 200 (the tier degrades to counted
// misses), the dial failures surface in Remote.Errors, and the law holds.
func TestRemoteDaemonDownDegrades(t *testing.T) {
	// Grab a loopback port and release it: a valid address nobody serves.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	svc, err := service.New(service.Config{
		CacheSize: 64, DefaultSolver: "hlf",
		RemoteAddr: deadAddr, RemoteTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Close()

	var first []byte
	for i := 0; i < 3; i++ {
		resp, got := post(t, ts.URL+"/v1/schedule", payload(t, "NE", int64(500+i)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d with dead daemon: %d %s", i, resp.StatusCode, got)
		}
		if i == 0 {
			first = got
		}
	}
	// The same key again: served from memory, the dead daemon never
	// consulted on the hit path.
	resp, again := post(t, ts.URL+"/v1/schedule", payload(t, "NE", 500))
	if resp.StatusCode != http.StatusOK || !bytes.Equal(again, first) {
		t.Fatalf("warm replay with dead daemon: %d, identical=%v", resp.StatusCode, bytes.Equal(again, first))
	}

	st := svc.Stats()
	if st.Remote.Errors == 0 {
		t.Fatal("dead daemon produced no remote errors")
	}
	if st.Remote.Hits != 0 {
		t.Fatalf("dead daemon produced %d remote hits", st.Remote.Hits)
	}
	checkLaw(t, st)
}
