// Package cliutil holds the small parsing helpers shared by the command
// line tools: topology specs, policy names, and program keys.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/programs"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// ParseTopology builds a topology from a spec string such as
// "hypercube:3", "bus:8", "ring:9", "star:8", "mesh:3x4", "torus:3x3",
// "chain:4", "complete:6" or "tree:3".
func ParseTopology(spec string) (*topology.Topology, error) {
	kind, arg, found := strings.Cut(spec, ":")
	if !found {
		return nil, fmt.Errorf("topology spec %q: want kind:arg (e.g. hypercube:3)", spec)
	}
	atoi := func(s string) (int, error) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return 0, fmt.Errorf("topology spec %q: bad number %q", spec, s)
		}
		return v, nil
	}
	switch kind {
	case "hypercube", "hc":
		d, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return topology.Hypercube(d)
	case "bus":
		n, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return topology.Bus(n)
	case "star":
		n, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return topology.Star(n)
	case "ring":
		n, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return topology.Ring(n)
	case "chain":
		n, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return topology.ChainTopo(n)
	case "complete", "full":
		n, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return topology.Complete(n)
	case "tree":
		n, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return topology.BinaryTree(n)
	case "mesh", "torus":
		rs, cs, ok := strings.Cut(arg, "x")
		if !ok {
			return nil, fmt.Errorf("topology spec %q: want %s:RxC", spec, kind)
		}
		r, err := atoi(rs)
		if err != nil {
			return nil, err
		}
		c, err := atoi(cs)
		if err != nil {
			return nil, err
		}
		if kind == "mesh" {
			return topology.Mesh(r, c)
		}
		return topology.Torus(r, c)
	default:
		return nil, fmt.Errorf("topology spec %q: unknown kind %q", spec, kind)
	}
}

// Policy resolution lives in the solver registry (solver.NewPolicy /
// solver.Get): the CLI tools, the experiment harness and the scheduling
// service all share it, so this package only parses machines and
// programs.

// BuildProgram returns a benchmark or synthetic graph by key: one of the
// paper programs (NE, GJ, FFT, MM), "graham", or "" for nothing.
func BuildProgram(key string) (*taskgraph.Graph, error) {
	switch strings.ToUpper(key) {
	case "NE", "GJ", "FFT", "MM":
		p, err := programs.ByKey(strings.ToUpper(key))
		if err != nil {
			return nil, err
		}
		return p.Build(), nil
	case "GRAHAM":
		return programs.GrahamAnomaly(), nil
	default:
		return nil, fmt.Errorf("unknown program %q (want NE, GJ, FFT, MM or graham)", key)
	}
}
