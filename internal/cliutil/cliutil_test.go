package cliutil

import (
	"testing"
)

func TestParseTopologyKinds(t *testing.T) {
	cases := []struct {
		spec string
		n    int
	}{
		{"hypercube:3", 8},
		{"hc:2", 4},
		{"bus:8", 8},
		{"star:8", 8},
		{"ring:9", 9},
		{"chain:4", 4},
		{"complete:6", 6},
		{"full:5", 5},
		{"tree:3", 7},
		{"mesh:3x4", 12},
		{"torus:3x3", 9},
	}
	for _, tc := range cases {
		topo, err := ParseTopology(tc.spec)
		if err != nil {
			t.Errorf("ParseTopology(%q): %v", tc.spec, err)
			continue
		}
		if topo.N() != tc.n {
			t.Errorf("ParseTopology(%q).N() = %d, want %d", tc.spec, topo.N(), tc.n)
		}
	}
}

func TestParseTopologyErrors(t *testing.T) {
	for _, spec := range []string{
		"", "hypercube", "hypercube:x", "mesh:3", "mesh:ax4", "warp:9", "ring:2", "mesh:3xq",
	} {
		if _, err := ParseTopology(spec); err == nil {
			t.Errorf("ParseTopology(%q) accepted", spec)
		}
	}
}

func TestBuildProgram(t *testing.T) {
	for key, tasks := range map[string]int{"NE": 95, "gj": 111, "FFT": 73, "mm": 111, "graham": 9} {
		g, err := BuildProgram(key)
		if err != nil {
			t.Errorf("BuildProgram(%q): %v", key, err)
			continue
		}
		if g.NumTasks() != tasks {
			t.Errorf("BuildProgram(%q) = %d tasks, want %d", key, g.NumTasks(), tasks)
		}
	}
	if _, err := BuildProgram("nope"); err == nil {
		t.Error("unknown program accepted")
	}
}
