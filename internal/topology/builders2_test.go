package topology

import "testing"

func TestCubeConnectedCycles(t *testing.T) {
	ccc, err := CubeConnectedCycles(3)
	if err != nil {
		t.Fatal(err)
	}
	if ccc.N() != 24 {
		t.Fatalf("CCC(3) N = %d, want 24", ccc.N())
	}
	// Every processor has degree exactly 3 (two cycle links, one cube
	// link); d=3 cycles make the two cycle neighbors distinct.
	for i := 0; i < ccc.N(); i++ {
		if ccc.Degree(i) != 3 {
			t.Errorf("CCC degree(%d) = %d, want 3", i, ccc.Degree(i))
		}
	}
	if ccc.Diameter() < 3 {
		t.Errorf("CCC(3) diameter = %d, suspiciously small", ccc.Diameter())
	}
	if _, err := CubeConnectedCycles(2); err == nil {
		t.Error("CCC(2) accepted")
	}
}

func TestDeBruijn(t *testing.T) {
	db, err := DeBruijn(4)
	if err != nil {
		t.Fatal(err)
	}
	if db.N() != 16 {
		t.Fatalf("B(2,4) N = %d, want 16", db.N())
	}
	// The undirected de Bruijn graph reaches any node within d hops.
	if db.Diameter() > 4 {
		t.Errorf("B(2,4) diameter = %d, want <= 4", db.Diameter())
	}
	// Degree is bounded by 4 (shuffle in/out neighbors).
	for i := 0; i < db.N(); i++ {
		if db.Degree(i) > 4 || db.Degree(i) < 1 {
			t.Errorf("de Bruijn degree(%d) = %d", i, db.Degree(i))
		}
	}
	if _, err := DeBruijn(1); err == nil {
		t.Error("B(2,1) accepted")
	}
}

func TestNewTopologiesSchedule(t *testing.T) {
	// The new networks must work end to end with the routing machinery:
	// spot-check path validity.
	for _, build := range []func() (*Topology, error){
		func() (*Topology, error) { return CubeConnectedCycles(3) },
		func() (*Topology, error) { return DeBruijn(3) },
	} {
		tp, err := build()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < tp.N(); i += 3 {
			for j := 0; j < tp.N(); j += 5 {
				path := tp.Path(i, j)
				if len(path)-1 != tp.Dist(i, j) {
					t.Fatalf("%s: path(%d,%d) inconsistent", tp.Name(), i, j)
				}
			}
		}
	}
}
