// Package topology models the host configuration HC = {P, L} of
// D'Hollander & Devis (ICPP 1991): a set of processors and a symmetric
// point-to-point interconnection network. The distance d(i,j) between two
// processors is the number of links on the shortest path; links are
// bidirectional and carry one message at a time.
//
// The package provides the paper's three evaluation architectures
// (hypercube, bus/star, ring) plus several common extensions, all-pairs
// hop distances, deterministic shortest-path routing, and the
// communication parameters σ and τ of the paper's cost model.
package topology

import (
	"fmt"
	"sort"
)

// Topology is an undirected, connected processor interconnection graph
// with precomputed distances and routing tables. Construct instances with
// the builder functions or with FromLinks. Topology values are immutable
// after construction and safe for concurrent use.
type Topology struct {
	name string
	n    int
	adj  [][]int // sorted neighbor lists
	dist [][]int // hop distances
	next [][]int // next[i][j]: neighbor of i on the canonical shortest path to j (next[i][i] = i)
	// sharedMedium marks bus-like topologies: every processor pair is one
	// hop apart but all transfers serialize on a single physical medium.
	sharedMedium bool
}

// SharedMedium reports whether all links of the topology are one shared
// physical medium (a bus): transfers then serialize globally instead of
// per point-to-point link.
func (t *Topology) SharedMedium() bool { return t.sharedMedium }

// FromLinks builds a topology over n processors from an explicit link
// list. Links are undirected; duplicates and self-links are rejected. The
// graph must be connected.
func FromLinks(name string, n int, links [][2]int) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: %d processors, want >= 1", n)
	}
	adj := make([][]int, n)
	seen := make(map[[2]int]bool)
	for _, l := range links {
		a, b := l[0], l[1]
		if a < 0 || a >= n || b < 0 || b >= n {
			return nil, fmt.Errorf("topology %q: link (%d,%d) out of range", name, a, b)
		}
		if a == b {
			return nil, fmt.Errorf("topology %q: self-link on processor %d", name, a)
		}
		key := canonicalLink(a, b)
		if seen[key] {
			return nil, fmt.Errorf("topology %q: duplicate link (%d,%d)", name, a, b)
		}
		seen[key] = true
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for i := range adj {
		sort.Ints(adj[i])
	}
	t := &Topology{name: name, n: n, adj: adj}
	if err := t.computeRoutes(); err != nil {
		return nil, err
	}
	return t, nil
}

// computeRoutes fills dist and next via BFS from every node. Neighbor
// lists are sorted, so the routing is deterministic: among equally short
// paths the one through the lowest-numbered neighbors wins.
func (t *Topology) computeRoutes() error {
	t.dist = make([][]int, t.n)
	t.next = make([][]int, t.n)
	for src := 0; src < t.n; src++ {
		dist := make([]int, t.n)
		parent := make([]int, t.n)
		for i := range dist {
			dist[i] = -1
			parent[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range t.adj[u] {
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		for i, d := range dist {
			if d == -1 {
				return fmt.Errorf("topology %q: processor %d unreachable from %d", t.name, i, src)
			}
		}
		// next hop from src toward every destination: walk the BFS tree of
		// the destination-rooted search. Easier: derive from parent pointers
		// of a BFS rooted at src by walking back from dst.
		nxt := make([]int, t.n)
		for dst := 0; dst < t.n; dst++ {
			if dst == src {
				nxt[dst] = src
				continue
			}
			v := dst
			for parent[v] != src {
				v = parent[v]
			}
			nxt[dst] = v
		}
		t.dist[src] = dist
		t.next[src] = nxt
	}
	return nil
}

// Name returns the topology's name (e.g. "hypercube-8").
func (t *Topology) Name() string { return t.name }

// N returns the number of processors.
func (t *Topology) N() int { return t.n }

// Neighbors returns the sorted neighbor list of processor i. The slice is
// owned by the topology and must not be modified.
func (t *Topology) Neighbors(i int) []int { return t.adj[i] }

// Degree returns the number of links at processor i.
func (t *Topology) Degree(i int) int { return len(t.adj[i]) }

// HasLink reports whether processors i and j share a direct link.
func (t *Topology) HasLink(i, j int) bool {
	if i == j {
		return false
	}
	a := t.adj[i]
	k := sort.SearchInts(a, j)
	return k < len(a) && a[k] == j
}

// Dist returns the hop distance between processors i and j.
func (t *Topology) Dist(i, j int) int { return t.dist[i][j] }

// Path returns the canonical shortest path from i to j including both
// endpoints; Path(i, i) is [i].
func (t *Topology) Path(i, j int) []int {
	path := []int{i}
	for cur := i; cur != j; {
		cur = t.next[cur][j]
		path = append(path, cur)
	}
	return path
}

// NextHop returns the neighbor of i on the canonical shortest path to j.
func (t *Topology) NextHop(i, j int) int { return t.next[i][j] }

// Diameter returns the largest hop distance between any processor pair.
func (t *Topology) Diameter() int {
	best := 0
	for i := 0; i < t.n; i++ {
		for j := 0; j < t.n; j++ {
			if t.dist[i][j] > best {
				best = t.dist[i][j]
			}
		}
	}
	return best
}

// AvgDist returns the mean hop distance over ordered pairs of distinct
// processors; it is 0 for a single processor.
func (t *Topology) AvgDist() float64 {
	if t.n < 2 {
		return 0
	}
	sum := 0
	for i := 0; i < t.n; i++ {
		for j := 0; j < t.n; j++ {
			if i != j {
				sum += t.dist[i][j]
			}
		}
	}
	return float64(sum) / float64(t.n*(t.n-1))
}

// Links returns every undirected link once, as canonical (low, high) pairs
// sorted lexicographically.
func (t *Topology) Links() [][2]int {
	var out [][2]int
	for i := 0; i < t.n; i++ {
		for _, j := range t.adj[i] {
			if i < j {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// NumLinks returns the number of undirected links.
func (t *Topology) NumLinks() int {
	sum := 0
	for i := range t.adj {
		sum += len(t.adj[i])
	}
	return sum / 2
}

// String returns a short human-readable summary.
func (t *Topology) String() string {
	return fmt.Sprintf("topology %q: %d processors, %d links, diameter %d",
		t.name, t.n, t.NumLinks(), t.Diameter())
}

// canonicalLink orders a link's endpoints so each undirected link has one
// map key.
func canonicalLink(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// CanonicalLink is the exported form of canonicalLink for consumers that
// key link resources (e.g. the machine simulator).
func CanonicalLink(a, b int) [2]int { return canonicalLink(a, b) }
