package topology

import "fmt"

// CubeConnectedCycles returns the CCC(d) network: each corner of a binary
// d-cube is replaced by a cycle of d processors, so N = d·2^d. Processor
// (c, i) — cycle position i at corner c — links to its cycle neighbors
// and, across dimension i, to (c XOR 2^i, i). CCC networks were a popular
// bounded-degree alternative to hypercubes in the multicomputer era the
// paper targets.
func CubeConnectedCycles(d int) (*Topology, error) {
	if d < 3 || d > 8 {
		return nil, fmt.Errorf("topology: CCC dimension %d out of range [3,8]", d)
	}
	corners := 1 << uint(d)
	n := d * corners
	id := func(corner, pos int) int { return corner*d + pos }
	seen := make(map[[2]int]bool)
	var links [][2]int
	add := func(a, b int) {
		key := canonicalLink(a, b)
		if !seen[key] {
			seen[key] = true
			links = append(links, key)
		}
	}
	for c := 0; c < corners; c++ {
		for i := 0; i < d; i++ {
			// Cycle links around the corner.
			add(id(c, i), id(c, (i+1)%d))
			// Dimension link across the cube.
			add(id(c, i), id(c^(1<<uint(i)), i))
		}
	}
	t, err := FromLinks(fmt.Sprintf("ccc-%d", n), n, links)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// DeBruijn returns the binary de Bruijn network B(2, d) over 2^d
// processors: node v links to (2v mod N) and (2v+1 mod N) — shuffle and
// shuffle-exchange neighbors — giving diameter d with constant degree.
// Links are undirected here (the paper's L is symmetric).
func DeBruijn(d int) (*Topology, error) {
	if d < 2 || d > 16 {
		return nil, fmt.Errorf("topology: de Bruijn dimension %d out of range [2,16]", d)
	}
	n := 1 << uint(d)
	seen := make(map[[2]int]bool)
	var links [][2]int
	for v := 0; v < n; v++ {
		for _, w := range []int{(2 * v) % n, (2*v + 1) % n} {
			if v == w {
				continue // self-loops at 0 and N-1 are dropped
			}
			key := canonicalLink(v, w)
			if !seen[key] {
				seen[key] = true
				links = append(links, key)
			}
		}
	}
	return FromLinks(fmt.Sprintf("debruijn-%d", n), n, links)
}
