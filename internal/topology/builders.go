package topology

import "fmt"

// Hypercube returns a binary d-cube with 2^d processors; processors are
// linked iff their indices differ in exactly one bit. The paper's first
// evaluation architecture is Hypercube(3) (8 processors).
func Hypercube(dim int) (*Topology, error) {
	if dim < 0 || dim > 20 {
		return nil, fmt.Errorf("topology: hypercube dimension %d out of range [0,20]", dim)
	}
	n := 1 << uint(dim)
	var links [][2]int
	for i := 0; i < n; i++ {
		for b := 0; b < dim; b++ {
			j := i ^ (1 << uint(b))
			if i < j {
				links = append(links, [2]int{i, j})
			}
		}
	}
	return FromLinks(fmt.Sprintf("hypercube-%d", n), n, links)
}

// Star returns a star over n processors with processor 0 as the hub; every
// other processor links only to the hub. Any two non-hub processors are
// two hops apart and their traffic is routed through (and preempts) the
// hub. This is the active-hub reading of a star network, used by the
// ablation experiments; the paper's evaluation architecture is Bus.
func Star(n int) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: star size %d, want >= 1", n)
	}
	var links [][2]int
	for i := 1; i < n; i++ {
		links = append(links, [2]int{0, i})
	}
	return FromLinks(fmt.Sprintf("star-%d", n), n, links)
}

// Bus returns the paper's "bus (star)" architecture (§6): a passive shared
// medium wired as a star. Every processor pair is one hop apart (no
// intermediate routing, so equation (4) reduces to w + σ), but the medium
// carries only one message at a time: all transfers serialize globally.
func Bus(n int) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: bus size %d, want >= 2", n)
	}
	var links [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			links = append(links, [2]int{i, j})
		}
	}
	t, err := FromLinks(fmt.Sprintf("bus-%d", n), n, links)
	if err != nil {
		return nil, err
	}
	t.sharedMedium = true
	return t, nil
}

// Ring returns a cycle of n processors; processor i links to (i±1) mod n.
// The paper's third evaluation architecture is Ring(9).
func Ring(n int) (*Topology, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: ring size %d, want >= 3", n)
	}
	var links [][2]int
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		links = append(links, [2]int{min(i, j), max(i, j)})
	}
	return FromLinks(fmt.Sprintf("ring-%d", n), n, links)
}

// ChainTopo returns a linear array of n processors (a ring with one link
// removed).
func ChainTopo(n int) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: chain size %d, want >= 1", n)
	}
	var links [][2]int
	for i := 0; i+1 < n; i++ {
		links = append(links, [2]int{i, i + 1})
	}
	return FromLinks(fmt.Sprintf("chain-%d", n), n, links)
}

// Mesh returns a rows × cols 2-D mesh.
func Mesh(rows, cols int) (*Topology, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("topology: mesh %dx%d, want >= 1x1", rows, cols)
	}
	var links [][2]int
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				links = append(links, [2]int{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				links = append(links, [2]int{id(r, c), id(r+1, c)})
			}
		}
	}
	return FromLinks(fmt.Sprintf("mesh-%dx%d", rows, cols), rows*cols, links)
}

// Torus returns a rows × cols 2-D torus (mesh with wraparound links).
// Both dimensions must be >= 3 so that wraparound links are distinct.
func Torus(rows, cols int) (*Topology, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("topology: torus %dx%d, want >= 3x3", rows, cols)
	}
	seen := make(map[[2]int]bool)
	var links [][2]int
	id := func(r, c int) int { return (r%rows)*cols + (c % cols) }
	add := func(a, b int) {
		key := canonicalLink(a, b)
		if !seen[key] {
			seen[key] = true
			links = append(links, key)
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			add(id(r, c), id(r, c+1))
			add(id(r, c), id(r+1, c))
		}
	}
	return FromLinks(fmt.Sprintf("torus-%dx%d", rows, cols), rows*cols, links)
}

// Complete returns the fully connected topology over n processors: every
// pair is one hop apart and has a private link (no routing, no contention
// between distinct pairs).
func Complete(n int) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: complete size %d, want >= 1", n)
	}
	var links [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			links = append(links, [2]int{i, j})
		}
	}
	return FromLinks(fmt.Sprintf("complete-%d", n), n, links)
}

// BinaryTree returns a complete binary tree with the given number of
// levels (levels=1 is a single processor). Processor 0 is the root;
// processor i has children 2i+1 and 2i+2.
func BinaryTree(levels int) (*Topology, error) {
	if levels < 1 || levels > 20 {
		return nil, fmt.Errorf("topology: tree levels %d out of range [1,20]", levels)
	}
	n := (1 << uint(levels)) - 1
	var links [][2]int
	for i := 0; ; i++ {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		links = append(links, [2]int{i, l})
		if r < n {
			links = append(links, [2]int{i, r})
		}
	}
	return FromLinks(fmt.Sprintf("tree-%d", n), n, links)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
