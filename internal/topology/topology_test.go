package topology

import (
	"math/rand"
	"strings"
	"testing"
)

func TestFromLinksRejectsBadInput(t *testing.T) {
	if _, err := FromLinks("x", 0, nil); err == nil {
		t.Error("zero processors accepted")
	}
	if _, err := FromLinks("x", 2, [][2]int{{0, 2}}); err == nil {
		t.Error("out-of-range link accepted")
	}
	if _, err := FromLinks("x", 2, [][2]int{{1, 1}}); err == nil {
		t.Error("self-link accepted")
	}
	if _, err := FromLinks("x", 2, [][2]int{{0, 1}, {1, 0}}); err == nil {
		t.Error("duplicate link accepted")
	}
	if _, err := FromLinks("x", 3, [][2]int{{0, 1}}); err == nil {
		t.Error("disconnected graph accepted")
	}
}

func TestSingleProcessor(t *testing.T) {
	tp, err := FromLinks("solo", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tp.N() != 1 || tp.Diameter() != 0 || tp.Dist(0, 0) != 0 {
		t.Fatalf("solo topology wrong: %v", tp)
	}
	path := tp.Path(0, 0)
	if len(path) != 1 || path[0] != 0 {
		t.Fatalf("Path(0,0) = %v", path)
	}
}

func TestHypercubeShape(t *testing.T) {
	for dim := 0; dim <= 4; dim++ {
		hc, err := Hypercube(dim)
		if err != nil {
			t.Fatal(err)
		}
		n := 1 << uint(dim)
		if hc.N() != n {
			t.Fatalf("dim %d: N = %d, want %d", dim, hc.N(), n)
		}
		if hc.NumLinks() != dim*n/2 {
			t.Fatalf("dim %d: links = %d, want %d", dim, hc.NumLinks(), dim*n/2)
		}
		if hc.Diameter() != dim {
			t.Fatalf("dim %d: diameter = %d, want %d", dim, hc.Diameter(), dim)
		}
		// Distance equals Hamming distance.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if hc.Dist(i, j) != popcount(i^j) {
					t.Fatalf("dim %d: dist(%d,%d) = %d, want %d", dim, i, j, hc.Dist(i, j), popcount(i^j))
				}
			}
		}
	}
	if _, err := Hypercube(-1); err == nil {
		t.Error("negative dimension accepted")
	}
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		c += x & 1
		x >>= 1
	}
	return c
}

func TestRingShape(t *testing.T) {
	r, err := Ring(9)
	if err != nil {
		t.Fatal(err)
	}
	if r.N() != 9 || r.NumLinks() != 9 || r.Diameter() != 4 {
		t.Fatalf("ring-9: %v", r)
	}
	if d := r.Dist(0, 5); d != 4 {
		t.Errorf("ring dist(0,5) = %d, want 4", d)
	}
	if d := r.Dist(0, 4); d != 4 {
		t.Errorf("ring dist(0,4) = %d, want 4", d)
	}
	for i := 0; i < 9; i++ {
		if r.Degree(i) != 2 {
			t.Errorf("ring degree(%d) = %d, want 2", i, r.Degree(i))
		}
	}
	if _, err := Ring(2); err == nil {
		t.Error("ring of 2 accepted")
	}
}

func TestBusIsSharedMediumCompleteGraph(t *testing.T) {
	b, err := Bus(8)
	if err != nil {
		t.Fatal(err)
	}
	if !b.SharedMedium() {
		t.Error("bus not marked shared medium")
	}
	if b.Diameter() != 1 {
		t.Errorf("bus diameter = %d, want 1", b.Diameter())
	}
	if b.NumLinks() != 8*7/2 {
		t.Errorf("bus links = %d, want 28", b.NumLinks())
	}
	if _, err := Bus(1); err == nil {
		t.Error("bus of 1 accepted")
	}
}

func TestStarRoutesThroughHub(t *testing.T) {
	s, err := Star(8)
	if err != nil {
		t.Fatal(err)
	}
	if s.SharedMedium() {
		t.Error("star marked shared medium")
	}
	if s.Diameter() != 2 {
		t.Errorf("star diameter = %d, want 2", s.Diameter())
	}
	path := s.Path(3, 5)
	if len(path) != 3 || path[1] != 0 {
		t.Errorf("star path(3,5) = %v, want via hub 0", path)
	}
}

func TestMeshAndTorus(t *testing.T) {
	m, err := Mesh(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 12 || m.Diameter() != 5 {
		t.Fatalf("mesh 3x4: N=%d diam=%d", m.N(), m.Diameter())
	}
	tor, err := Torus(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tor.N() != 9 || tor.Diameter() != 2 {
		t.Fatalf("torus 3x3: N=%d diam=%d", tor.N(), tor.Diameter())
	}
	if _, err := Torus(2, 3); err == nil {
		t.Error("2-row torus accepted")
	}
	if _, err := Mesh(0, 3); err == nil {
		t.Error("0-row mesh accepted")
	}
}

func TestCompleteChainTree(t *testing.T) {
	c, err := Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Diameter() != 1 || c.NumLinks() != 10 {
		t.Fatalf("complete-5: %v", c)
	}
	ch, err := ChainTopo(6)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Diameter() != 5 {
		t.Fatalf("chain-6 diameter = %d", ch.Diameter())
	}
	bt, err := BinaryTree(3)
	if err != nil {
		t.Fatal(err)
	}
	if bt.N() != 7 || bt.Diameter() != 4 {
		t.Fatalf("tree-7: N=%d diam=%d", bt.N(), bt.Diameter())
	}
}

func TestPathsAreShortestAndValid(t *testing.T) {
	topos := []*Topology{}
	for _, build := range []func() (*Topology, error){
		func() (*Topology, error) { return Hypercube(3) },
		func() (*Topology, error) { return Ring(9) },
		func() (*Topology, error) { return Star(8) },
		func() (*Topology, error) { return Mesh(3, 3) },
		func() (*Topology, error) { return BinaryTree(4) },
	} {
		tp, err := build()
		if err != nil {
			t.Fatal(err)
		}
		topos = append(topos, tp)
	}
	for _, tp := range topos {
		for i := 0; i < tp.N(); i++ {
			for j := 0; j < tp.N(); j++ {
				path := tp.Path(i, j)
				if len(path)-1 != tp.Dist(i, j) {
					t.Fatalf("%s: path(%d,%d) len %d != dist %d", tp.Name(), i, j, len(path)-1, tp.Dist(i, j))
				}
				if path[0] != i || path[len(path)-1] != j {
					t.Fatalf("%s: path(%d,%d) endpoints %v", tp.Name(), i, j, path)
				}
				for k := 1; k < len(path); k++ {
					if !tp.HasLink(path[k-1], path[k]) {
						t.Fatalf("%s: path(%d,%d) uses non-link (%d,%d)", tp.Name(), i, j, path[k-1], path[k])
					}
				}
			}
		}
	}
}

func TestDistSymmetricAndTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Random connected graphs: a random spanning tree plus random extras.
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(12)
		seen := map[[2]int]bool{}
		var links [][2]int
		for i := 1; i < n; i++ {
			j := rng.Intn(i)
			links = append(links, [2]int{j, i})
			seen[[2]int{j, i}] = true
		}
		for k := 0; k < n; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			key := canonicalLink(a, b)
			if !seen[key] {
				seen[key] = true
				links = append(links, key)
			}
		}
		tp, err := FromLinks("rand", n, links)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if tp.Dist(i, i) != 0 {
				t.Fatalf("dist(%d,%d) != 0", i, i)
			}
			for j := 0; j < n; j++ {
				if tp.Dist(i, j) != tp.Dist(j, i) {
					t.Fatalf("asymmetric dist(%d,%d)", i, j)
				}
				for k := 0; k < n; k++ {
					if tp.Dist(i, k) > tp.Dist(i, j)+tp.Dist(j, k) {
						t.Fatalf("triangle violation %d,%d,%d", i, j, k)
					}
				}
			}
		}
	}
}

func TestAvgDistAndString(t *testing.T) {
	r, _ := Ring(4)
	// Ring of 4: distances 1,2,1 from each node; avg = 4/3.
	if got := r.AvgDist(); got < 1.33 || got > 1.34 {
		t.Errorf("AvgDist = %g, want 4/3", got)
	}
	if !strings.Contains(r.String(), "ring-4") {
		t.Errorf("String = %q", r.String())
	}
	solo, _ := FromLinks("solo", 1, nil)
	if solo.AvgDist() != 0 {
		t.Error("solo AvgDist != 0")
	}
}

func TestLinksCanonical(t *testing.T) {
	hc, _ := Hypercube(2)
	links := hc.Links()
	if len(links) != 4 {
		t.Fatalf("links = %v", links)
	}
	for _, l := range links {
		if l[0] >= l[1] {
			t.Errorf("non-canonical link %v", l)
		}
	}
	if CanonicalLink(3, 1) != [2]int{1, 3} {
		t.Error("CanonicalLink does not order")
	}
}

func TestNextHopConsistentWithPath(t *testing.T) {
	hc, _ := Hypercube(3)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i == j {
				if hc.NextHop(i, j) != i {
					t.Fatalf("NextHop(%d,%d) != %d", i, j, i)
				}
				continue
			}
			path := hc.Path(i, j)
			if hc.NextHop(i, j) != path[1] {
				t.Fatalf("NextHop(%d,%d) = %d, path %v", i, j, hc.NextHop(i, j), path)
			}
		}
	}
}
