package topology

import "fmt"

// CommParams bundles the communication parameters of the paper's cost
// model (§4.2b). Two events characterize message handling: σ, the time to
// forward (send) one message, and τ, the time to receive or route one
// message. They derive from the context-switch time S, the output setup
// time O, and the header-control time H:
//
//	σ = 2S + O
//	τ = 2S + H + O
//
// For the paper's bit-serial linked hypercube systems O = 3 µs and
// S = H = 2 µs, giving σ = 7 µs and τ = 9 µs. Links have a bandwidth BW;
// a message of L bits takes L/BW per link.
type CommParams struct {
	// Bandwidth is the link bandwidth in bits per microsecond. The paper's
	// 10 Mb/s link is 10 bits/µs (40-bit variables thus take 4 µs per hop).
	Bandwidth float64 `json:"bandwidth"`
	// Sigma (σ) is the message send/forward overhead in µs.
	Sigma float64 `json:"sigma"`
	// Tau (τ) is the message receive/route overhead in µs.
	Tau float64 `json:"tau"`
	// Scale multiplies every communication time. 1 is the paper's "with
	// communication" configuration; 0 is the "w/o comm" configuration in
	// which messages are free and instantaneous.
	Scale float64 `json:"scale"`
}

// DefaultCommParams returns the paper's parameters: 10 Mb/s links,
// σ = 7 µs, τ = 9 µs, communication enabled.
func DefaultCommParams() CommParams {
	return CommParams{Bandwidth: 10, Sigma: 7, Tau: 9, Scale: 1}
}

// NoComm returns a copy of p with communication disabled (Scale = 0),
// matching the paper's "w/o Comm." columns.
func (p CommParams) NoComm() CommParams {
	p.Scale = 0
	return p
}

// WithComm returns a copy of p with communication enabled (Scale = 1).
func (p CommParams) WithComm() CommParams {
	p.Scale = 1
	return p
}

// Validate reports whether the parameters are usable.
func (p CommParams) Validate() error {
	switch {
	case p.Bandwidth <= 0:
		return fmt.Errorf("topology: bandwidth %g, want > 0", p.Bandwidth)
	case p.Sigma < 0 || p.Tau < 0:
		return fmt.Errorf("topology: negative overhead σ=%g τ=%g", p.Sigma, p.Tau)
	case p.Scale < 0:
		return fmt.Errorf("topology: negative scale %g", p.Scale)
	}
	return nil
}

// ParamsFromHardware derives σ and τ from the hardware event times:
// context switch S, output setup O and header control H (all µs).
func ParamsFromHardware(bandwidth, s, o, h float64) CommParams {
	return CommParams{
		Bandwidth: bandwidth,
		Sigma:     2*s + o,
		Tau:       2*s + h + o,
		Scale:     1,
	}
}

// TransferTime returns the per-link transfer time w = L/BW (µs) of a
// message of the given volume in bits, scaled by the communication scale.
func (p CommParams) TransferTime(bits float64) float64 {
	return p.Scale * bits / p.Bandwidth
}

// EffSigma returns the effective (scaled) send overhead.
func (p CommParams) EffSigma() float64 { return p.Scale * p.Sigma }

// EffTau returns the effective (scaled) receive/route overhead.
func (p CommParams) EffTau() float64 { return p.Scale * p.Tau }

// CommCost evaluates the paper's equation (4): the effective cost of
// sending a message of the given volume between two tasks whose hosting
// processors are dist hops apart:
//
//	c = w·d + (d − 1 + δ)·τ + (1 − δ)·σ
//
// where δ = 1 iff the processors coincide (d = 0), in which case the cost
// is identically zero. The three parts are the distance-volume product on
// the links, the routing contribution of the intermediate processors, and
// the link setup cost.
func (p CommParams) CommCost(dist int, bits float64) float64 {
	if dist <= 0 {
		return 0
	}
	w := p.TransferTime(bits)
	return w*float64(dist) + float64(dist-1)*p.EffTau() + p.EffSigma()
}

// MaxCommCost returns equation (4) evaluated at the given distance for a
// message of the given volume; it is a convenience for normalization code
// that places "the tasks with the highest communication at the largest
// distance" (§4.2c).
func (p CommParams) MaxCommCost(diameter int, bits float64) float64 {
	return p.CommCost(diameter, bits)
}
