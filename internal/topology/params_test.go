package topology

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultCommParamsMatchPaper(t *testing.T) {
	p := DefaultCommParams()
	if p.Sigma != 7 || p.Tau != 9 || p.Bandwidth != 10 || p.Scale != 1 {
		t.Fatalf("defaults = %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsFromHardware(t *testing.T) {
	// O = 3µs, S = H = 2µs gives σ = 7µs, τ = 9µs (paper §4.2b).
	p := ParamsFromHardware(10, 2, 3, 2)
	if p.Sigma != 7 {
		t.Errorf("σ = %g, want 7", p.Sigma)
	}
	if p.Tau != 9 {
		t.Errorf("τ = %g, want 9", p.Tau)
	}
}

func TestTransferTime(t *testing.T) {
	p := DefaultCommParams()
	// One 40-bit variable over a 10 bits/µs link takes 4 µs.
	if got := p.TransferTime(40); got != 4 {
		t.Errorf("TransferTime(40) = %g, want 4", got)
	}
	if got := p.NoComm().TransferTime(40); got != 0 {
		t.Errorf("NoComm TransferTime = %g, want 0", got)
	}
}

func TestCommCostEquation4(t *testing.T) {
	p := DefaultCommParams()
	// Same processor: cost is identically zero.
	if got := p.CommCost(0, 1000); got != 0 {
		t.Errorf("same-proc cost = %g, want 0", got)
	}
	// Neighbors (d=1): w + σ = 4 + 7 = 11.
	if got := p.CommCost(1, 40); math.Abs(got-11) > 1e-12 {
		t.Errorf("d=1 cost = %g, want 11", got)
	}
	// Two hops (d=2): 2w + τ + σ = 8 + 9 + 7 = 24.
	if got := p.CommCost(2, 40); math.Abs(got-24) > 1e-12 {
		t.Errorf("d=2 cost = %g, want 24", got)
	}
	// Four hops (d=4): 4w + 3τ + σ = 16 + 27 + 7 = 50.
	if got := p.CommCost(4, 40); math.Abs(got-50) > 1e-12 {
		t.Errorf("d=4 cost = %g, want 50", got)
	}
}

func TestCommCostScales(t *testing.T) {
	p := DefaultCommParams()
	p.Scale = 0.5
	if got := p.CommCost(2, 40); math.Abs(got-12) > 1e-12 {
		t.Errorf("scaled d=2 cost = %g, want 12", got)
	}
	if got := p.NoComm().CommCost(3, 4000); got != 0 {
		t.Errorf("NoComm cost = %g, want 0", got)
	}
	if p.NoComm().WithComm().Scale != 1 {
		t.Error("WithComm did not restore scale")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []CommParams{
		{Bandwidth: 0, Scale: 1},
		{Bandwidth: 10, Sigma: -1, Scale: 1},
		{Bandwidth: 10, Tau: -1, Scale: 1},
		{Bandwidth: 10, Scale: -0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
}

// Property: eq. 4 cost is monotonically nondecreasing in distance and in
// volume, and MaxCommCost at the diameter bounds any same-volume cost.
func TestQuickCommCostMonotone(t *testing.T) {
	p := DefaultCommParams()
	f := func(rawD uint8, rawBits uint16) bool {
		d := int(rawD % 10)
		bits := float64(rawBits)
		if p.CommCost(d, bits) > p.CommCost(d+1, bits) {
			return false
		}
		if p.CommCost(d, bits) > p.CommCost(d, bits+1) {
			return false
		}
		return p.CommCost(d, bits) <= p.MaxCommCost(10, bits)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
