package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanSumVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if !almost(Mean(xs), 2.5) {
		t.Errorf("Mean = %g", Mean(xs))
	}
	if !almost(Sum(xs), 10) {
		t.Errorf("Sum = %g", Sum(xs))
	}
	if !almost(Variance(xs), 1.25) {
		t.Errorf("Variance = %g", Variance(xs))
	}
	if !almost(StdDev(xs), math.Sqrt(1.25)) {
		t.Errorf("StdDev = %g", StdDev(xs))
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("empty/singleton defaults wrong")
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if Min(xs) != 1 || Max(xs) != 5 || Median(xs) != 3 {
		t.Errorf("min/max/median = %g/%g/%g", Min(xs), Max(xs), Median(xs))
	}
	even := []float64{4, 1, 3, 2}
	if !almost(Median(even), 2.5) {
		t.Errorf("even median = %g", Median(even))
	}
}

func TestPanicsOnEmpty(t *testing.T) {
	for name, f := range map[string]func(){
		"Min":        func() { Min(nil) },
		"Max":        func() { Max(nil) },
		"Median":     func() { Median(nil) },
		"Percentile": func() { Percentile(nil, 50) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(nil) did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if !almost(Percentile(xs, 0), 10) || !almost(Percentile(xs, 100), 50) {
		t.Error("extreme percentiles wrong")
	}
	if !almost(Percentile(xs, 50), 30) {
		t.Errorf("P50 = %g", Percentile(xs, 50))
	}
	if !almost(Percentile(xs, 25), 20) {
		t.Errorf("P25 = %g", Percentile(xs, 25))
	}
	if !almost(Percentile(xs, 10), 14) { // interpolated
		t.Errorf("P10 = %g", Percentile(xs, 10))
	}
}

func TestGeoMean(t *testing.T) {
	gm, err := GeoMean([]float64{1, 4, 16})
	if err != nil || !almost(gm, 4) {
		t.Errorf("GeoMean = %g, %v", gm, err)
	}
	if _, err := GeoMean([]float64{1, -2}); err == nil {
		t.Error("negative sample accepted")
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty accepted")
	}
}

func TestSummarizeAndString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || !almost(s.Mean, 2) || !almost(s.Median, 2) {
		t.Errorf("summary = %+v", s)
	}
	if !strings.Contains(s.String(), "n=3") {
		t.Errorf("String = %q", s.String())
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.5, 1.5, 2.5, 2.6, -5, 99}
	counts := Histogram(xs, 0, 3, 3)
	if len(counts) != 3 {
		t.Fatalf("bins = %v", counts)
	}
	// -5 clamps into bin 0; 99 into bin 2.
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 3 {
		t.Errorf("counts = %v", counts)
	}
	if Histogram(xs, 3, 0, 3) != nil || Histogram(xs, 0, 1, 0) != nil {
		t.Error("invalid ranges accepted")
	}
}

func TestSparkLine(t *testing.T) {
	if SparkLine(nil) != "" {
		t.Error("empty sparkline not empty")
	}
	s := SparkLine([]int{0, 5, 10})
	if len([]rune(s)) != 3 {
		t.Errorf("sparkline runes = %q", s)
	}
	flat := SparkLine([]int{0, 0})
	if len([]rune(flat)) != 2 {
		t.Errorf("flat sparkline = %q", flat)
	}
}

// Property: Min <= Median <= Max and Mean within [Min, Max].
func TestQuickOrderInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			// Skip values whose sum could overflow: the mean of samples
			// near ±MaxFloat64 is not finite arithmetic.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e300 {
				continue
			}
			xs = append(xs, v)
		}
		if len(xs) == 0 {
			return true
		}
		lo, hi, med, mean := Min(xs), Max(xs), Median(xs), Mean(xs)
		return lo <= med && med <= hi && lo-1e-9 <= mean && mean <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
