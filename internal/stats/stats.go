// Package stats provides the small set of descriptive statistics used by
// the experiment harness and tests: means, deviations, extrema and
// histograms over float64 samples.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	best := xs[0]
	for _, x := range xs[1:] {
		if x < best {
			best = x
		}
	}
	return best
}

// Max returns the largest element of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	best := xs[0]
	for _, x := range xs[1:] {
		if x > best {
			best = x
		}
	}
	return best
}

// Median returns the median of xs (the mean of the two middle elements for
// even lengths); it panics on an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Median of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks; it panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p <= 0 {
		return Min(xs)
	}
	if p >= 100 {
		return Max(xs)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// GeoMean returns the geometric mean of xs; all samples must be positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: GeoMean of empty slice")
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: GeoMean sample %g <= 0", x)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Summary bundles the descriptive statistics of a sample.
type Summary struct {
	N            int
	Mean, StdDev float64
	Min, Max     float64
	Median       float64
}

// Summarize computes a Summary of xs; the zero Summary is returned for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		Median: Median(xs),
	}
}

// String formats the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}

// Histogram counts samples into equal-width bins over [lo, hi]; samples
// outside the range are clamped into the edge bins.
func Histogram(xs []float64, lo, hi float64, bins int) []int {
	if bins < 1 || hi <= lo {
		return nil
	}
	counts := make([]int, bins)
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		k := int((x - lo) / width)
		if k < 0 {
			k = 0
		}
		if k >= bins {
			k = bins - 1
		}
		counts[k]++
	}
	return counts
}

// SparkLine renders counts as a compact unicode bar string, useful for
// terminal diagnostics.
func SparkLine(counts []int) string {
	if len(counts) == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	for _, c := range counts {
		if peak == 0 {
			b.WriteRune(glyphs[0])
			continue
		}
		idx := c * (len(glyphs) - 1) / peak
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}
