package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// LatencyBuckets are the fixed upper bounds (seconds) for end-to-end and
// per-stage latency histograms, spanning sub-millisecond list-policy
// solves to multi-second annealing portfolios.
var LatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// QueueBuckets are the finer-grained bounds (seconds) for queue-delay and
// micro-stage histograms: an interactive-lane queue wait is tens of
// microseconds when healthy, and the whole point of exporting it is to
// see the healthy/overloaded boundary the millisecond buckets flatten.
var QueueBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1,
}

// Histogram is a fixed-bucket latency histogram. Safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // one per bound, plus a final +Inf bucket
	sum    float64
	total  uint64
}

// NewHistogram returns a histogram over the given upper bounds (which
// must be sorted ascending; a +Inf bucket is implicit).
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one duration. Nil-safe (a nil histogram drops the
// observation), so callers can leave optional histograms unwired.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	v := d.Seconds()
	// First bucket whose upper bound admits v; the tail bucket is +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// HistSnapshot is a point-in-time copy of a histogram with cumulative
// bucket counts, as the Prometheus exposition requires.
type HistSnapshot struct {
	Bounds []float64
	Cum    []uint64 // cumulative; Cum[len(Bounds)] is the +Inf bucket
	Sum    float64
	Count  uint64
}

// Snapshot returns the histogram's cumulative state. Nil-safe: a nil
// histogram snapshots as empty (no bounds, zero count).
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]uint64, len(h.counts))
	var running uint64
	for i, c := range h.counts {
		running += c
		cum[i] = running
	}
	return HistSnapshot{Bounds: h.bounds, Cum: cum, Sum: h.sum, Count: h.total}
}

// WriteProm writes the snapshot as Prometheus exposition lines for the
// family name with the given label (e.g. `stage="solve"`; empty for an
// unlabeled histogram). HELP/TYPE headers are the caller's job — a
// labeled family emits them once, then one WriteProm per label value.
func (s HistSnapshot) WriteProm(b *strings.Builder, name, label string) {
	brace := func(extra string) string {
		switch {
		case label == "" && extra == "":
			return ""
		case label == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + label + "}"
		default:
			return "{" + label + "," + extra + "}"
		}
	}
	for i, ub := range s.Bounds {
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, brace(fmt.Sprintf("le=%q", TrimFloat(ub))), s.Cum[i])
	}
	inf := uint64(0)
	if len(s.Cum) > 0 {
		inf = s.Cum[len(s.Cum)-1]
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, brace(`le="+Inf"`), inf)
	fmt.Fprintf(b, "%s_sum%s %g\n", name, brace(""), s.Sum)
	fmt.Fprintf(b, "%s_count%s %d\n", name, brace(""), s.Count)
}

// TrimFloat renders a bucket bound the way Prometheus clients expect
// ("0.005", "1", "2.5").
func TrimFloat(v float64) string {
	s := strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}
