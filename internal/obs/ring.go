package obs

import "sync"

// Ring retains completed traces for live introspection: the most recent
// N in arrival order plus the K slowest ever seen (by total duration),
// both bounded. /debug/requests serves its snapshot as JSON.
type Ring struct {
	mu      sync.Mutex
	recent  []*TraceData // circular, recentN capacity
	next    int          // write cursor into recent
	filled  bool         // recent has wrapped at least once
	slowest []*TraceData // sorted descending by TotalNS, slowK capacity
	total   uint64       // traces ever added
}

// NewRing returns a ring keeping the last recentN traces and the slowK
// slowest. Non-positive sizes fall back to 64 and 16.
func NewRing(recentN, slowK int) *Ring {
	if recentN <= 0 {
		recentN = 64
	}
	if slowK <= 0 {
		slowK = 16
	}
	return &Ring{
		recent:  make([]*TraceData, recentN),
		slowest: make([]*TraceData, 0, slowK),
	}
}

// Add records a completed trace. Nil-safe on both sides: a nil ring or a
// nil snapshot is a no-op.
func (r *Ring) Add(td *TraceData) {
	if r == nil || td == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	r.recent[r.next] = td
	r.next++
	if r.next == len(r.recent) {
		r.next = 0
		r.filled = true
	}
	// Keep slowest sorted descending; insert if it beats the tail or
	// there is room.
	k := cap(r.slowest)
	if len(r.slowest) < k || td.TotalNS > r.slowest[len(r.slowest)-1].TotalNS {
		i := len(r.slowest)
		if i < k {
			r.slowest = r.slowest[:i+1]
		} else {
			i = k - 1
		}
		for i > 0 && r.slowest[i-1].TotalNS < td.TotalNS {
			r.slowest[i] = r.slowest[i-1]
			i--
		}
		r.slowest[i] = td
	}
}

// RingSnapshot is the marshal-ready view /debug/requests serves.
type RingSnapshot struct {
	// Total counts every trace the ring has ever seen, retained or not.
	Total uint64 `json:"total"`
	// Recent holds the last N completed traces, most recent first.
	Recent []*TraceData `json:"recent"`
	// Slowest holds the K slowest traces ever seen, slowest first.
	Slowest []*TraceData `json:"slowest"`
}

// Snapshot returns the ring's current contents. The *TraceData entries
// are shared (they are immutable once snapshotted from a Trace).
func (r *Ring) Snapshot() RingSnapshot {
	if r == nil {
		return RingSnapshot{Recent: []*TraceData{}, Slowest: []*TraceData{}}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.filled {
		n = len(r.recent)
	}
	recent := make([]*TraceData, 0, n)
	// Walk backwards from the cursor: most recent first.
	for i := 0; i < n; i++ {
		idx := (r.next - 1 - i + len(r.recent)) % len(r.recent)
		recent = append(recent, r.recent[idx])
	}
	slowest := make([]*TraceData, len(r.slowest))
	copy(slowest, r.slowest)
	return RingSnapshot{Total: r.total, Recent: recent, Slowest: slowest}
}
