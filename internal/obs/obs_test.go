package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceFastPath(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Fatalf("nil trace ID = %q, want empty", tr.ID())
	}
	tr.Observe(StageSolve, time.Now(), time.Millisecond)
	tr.ObserveSub("portfolio:sa", time.Now(), time.Millisecond)
	tr.Annotate("k", "v")
	tr.Start(StageDecode).End()
	if td := tr.Snapshot(time.Second); td != nil {
		t.Fatalf("nil trace snapshot = %+v, want nil", td)
	}
	Release(tr) // must not panic

	ctx := With(context.Background(), nil)
	if got := FromContext(ctx); got != nil {
		t.Fatalf("FromContext(With(nil)) = %v, want nil", got)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext(background) = %v, want nil", got)
	}
}

func TestTraceRecordsOrderedStages(t *testing.T) {
	t0 := time.Now()
	tr := NewTrace("abc123", t0)
	defer Release(tr)

	// Record out of order on purpose: Snapshot sorts by start offset.
	tr.Observe(StageSolve, t0.Add(3*time.Millisecond), 5*time.Millisecond, KV{"solver", "sa"})
	tr.Observe(StageDecode, t0, time.Millisecond)
	tr.Observe(StageCanonicalize, t0.Add(time.Millisecond), 2*time.Millisecond)
	tr.ObserveSub("portfolio:etf", t0.Add(4*time.Millisecond), time.Millisecond)
	tr.Annotate("lane", "interactive")

	td := tr.Snapshot(10 * time.Millisecond)
	if td.ID != "abc123" {
		t.Fatalf("ID = %q", td.ID)
	}
	if td.TotalNS != (10 * time.Millisecond).Nanoseconds() {
		t.Fatalf("TotalNS = %d", td.TotalNS)
	}
	want := []string{StageDecode, StageCanonicalize, StageSolve, "portfolio:etf"}
	if len(td.Stages) != len(want) {
		t.Fatalf("got %d stages, want %d: %+v", len(td.Stages), len(want), td.Stages)
	}
	for i, name := range want {
		if td.Stages[i].Stage != name {
			t.Fatalf("stage[%d] = %q, want %q (all: %+v)", i, td.Stages[i].Stage, name, td.Stages)
		}
	}
	if td.Stages[3].Depth != 1 {
		t.Fatalf("sub-stage depth = %d, want 1", td.Stages[3].Depth)
	}
	if td.Stages[2].Notes["solver"] != "sa" {
		t.Fatalf("solve notes = %v", td.Stages[2].Notes)
	}
	if td.Notes["lane"] != "interactive" {
		t.Fatalf("trace notes = %v", td.Notes)
	}

	// Snapshot is detached: releasing the trace must not corrupt it.
	Release(tr)
	if td.Stages[0].Stage != StageDecode {
		t.Fatal("snapshot mutated by Release")
	}
}

func TestTraceConcurrentObserve(t *testing.T) {
	tr := NewTrace(NewID(), time.Now())
	defer Release(tr)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.ObserveSub("portfolio:sa", time.Now(), time.Microsecond)
				tr.Annotate("k", "v")
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Snapshot(0).Stages); got != 800 {
		t.Fatalf("recorded %d stages, want 800", got)
	}
}

func TestContextCarriage(t *testing.T) {
	tr := NewTrace("id1", time.Now())
	defer Release(tr)
	ctx := With(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %p, want %p", got, tr)
	}
	// Stripping: portfolio members must not see the parent trace.
	stripped := With(ctx, nil)
	if got := FromContext(stripped); got != nil {
		t.Fatalf("stripped ctx still carries %p", got)
	}
}

func TestNewID(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewID()
		if len(id) != 16 {
			t.Fatalf("id %q has length %d, want 16", id, len(id))
		}
		if strings.Trim(id, "0123456789abcdef") != "" {
			t.Fatalf("id %q is not lowercase hex", id)
		}
		seen[id] = true
	}
	if len(seen) < 99 {
		t.Fatalf("only %d distinct IDs in 100 draws", len(seen))
	}
}

func TestSampler(t *testing.T) {
	var s Sampler
	if s.Sample() {
		t.Fatal("zero-value sampler sampled")
	}
	s.SetEvery(1)
	for i := 0; i < 5; i++ {
		if !s.Sample() {
			t.Fatal("every=1 sampler skipped")
		}
	}
	s.SetEvery(4)
	hits := 0
	for i := 0; i < 400; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("every=4 sampled %d of 400", hits)
	}
	s.SetEvery(0)
	if s.Sample() {
		t.Fatal("disabled sampler sampled")
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	h.Observe(500 * time.Microsecond) // bucket le=0.001
	h.Observe(2 * time.Millisecond)   // le=0.0025
	h.Observe(2 * time.Millisecond)
	h.Observe(20 * time.Second) // +Inf only
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Cum[0] != 1 || s.Cum[1] != 3 {
		t.Fatalf("cum = %v", s.Cum)
	}
	if s.Cum[len(s.Cum)-1] != 4 {
		t.Fatalf("+Inf bucket = %d, want 4", s.Cum[len(s.Cum)-1])
	}
	for i := 1; i < len(s.Cum); i++ {
		if s.Cum[i] < s.Cum[i-1] {
			t.Fatalf("buckets not cumulative at %d: %v", i, s.Cum)
		}
	}

	var nilH *Histogram
	nilH.Observe(time.Second) // no-op, no panic
	if ns := nilH.Snapshot(); ns.Count != 0 {
		t.Fatalf("nil histogram count = %d", ns.Count)
	}
}

func TestHistogramWriteProm(t *testing.T) {
	h := NewHistogram([]float64{0.001, 1})
	h.Observe(2 * time.Millisecond)
	var b strings.Builder
	h.Snapshot().WriteProm(&b, "x_seconds", `lane="batch"`)
	out := b.String()
	for _, want := range []string{
		`x_seconds_bucket{lane="batch",le="0.001"} 0`,
		`x_seconds_bucket{lane="batch",le="1"} 1`,
		`x_seconds_bucket{lane="batch",le="+Inf"} 1`,
		`x_seconds_count{lane="batch"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	b.Reset()
	h.Snapshot().WriteProm(&b, "y_seconds", "")
	if !strings.Contains(b.String(), `y_seconds_bucket{le="+Inf"} 1`) {
		t.Fatalf("unlabeled exposition:\n%s", b.String())
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		0.005:   "0.005",
		1:       "1",
		2.5:     "2.5",
		0.00001: "0.00001",
	}
	for in, want := range cases {
		if got := TrimFloat(in); got != want {
			t.Fatalf("TrimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRingRecentAndSlowest(t *testing.T) {
	r := NewRing(4, 2)
	mk := func(id string, totalMS int64) *TraceData {
		return &TraceData{ID: id, TotalNS: totalMS * int64(time.Millisecond)}
	}
	r.Add(mk("a", 5))
	r.Add(mk("b", 50))
	r.Add(mk("c", 1))
	r.Add(mk("d", 10))
	r.Add(mk("e", 3)) // wraps; evicts "a" from recent

	s := r.Snapshot()
	if s.Total != 5 {
		t.Fatalf("total = %d", s.Total)
	}
	gotRecent := []string{}
	for _, td := range s.Recent {
		gotRecent = append(gotRecent, td.ID)
	}
	if strings.Join(gotRecent, "") != "edcb" {
		t.Fatalf("recent = %v, want [e d c b]", gotRecent)
	}
	if len(s.Slowest) != 2 || s.Slowest[0].ID != "b" || s.Slowest[1].ID != "d" {
		ids := []string{}
		for _, td := range s.Slowest {
			ids = append(ids, td.ID)
		}
		t.Fatalf("slowest = %v, want [b d]", ids)
	}

	var nilRing *Ring
	nilRing.Add(mk("x", 1)) // no-op
	ns := nilRing.Snapshot()
	if len(ns.Recent) != 0 || len(ns.Slowest) != 0 {
		t.Fatalf("nil ring snapshot = %+v", ns)
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(8, 4)
	r.Add(&TraceData{ID: "only", TotalNS: 1})
	s := r.Snapshot()
	if len(s.Recent) != 1 || s.Recent[0].ID != "only" {
		t.Fatalf("recent = %+v", s.Recent)
	}
	if len(s.Slowest) != 1 {
		t.Fatalf("slowest = %+v", s.Slowest)
	}
}

func TestTracePoolReuse(t *testing.T) {
	tr := NewTrace("first", time.Now())
	tr.Observe(StageDecode, time.Now(), time.Millisecond)
	Release(tr)
	tr2 := NewTrace("second", time.Now())
	defer Release(tr2)
	if td := tr2.Snapshot(0); len(td.Stages) != 0 {
		t.Fatalf("pooled trace leaked %d stages from its prior life", len(td.Stages))
	}
	if tr2.ID() != "second" {
		t.Fatalf("pooled trace ID = %q", tr2.ID())
	}
}
