// Package obs is the observability substrate of the serving stack: a
// request-scoped stage trace carried through context.Context across every
// layer (service handlers, the engine's queues and workers, the solver
// portfolio, the simulator), plus the latency histograms, the completed-
// trace ring buffer and the sampling knob the surfaces above it —
// /metrics, /debug/requests, structured request logs and the wire "trace"
// block — are built from.
//
// Cost model: a request that is not being traced carries no *Trace in its
// context, and every instrumentation point starts with a nil check — the
// disabled path is one context lookup and a branch, no allocation, no
// lock. Traced requests draw their Trace from a sync.Pool (stage buffers
// are reused across requests), and whether a request is traced is decided
// by an explicit wire flag or an atomic 1-in-N sampler, so the knob can be
// turned at runtime without a lock on the hot path.
//
// Stage taxonomy (top-level stages tile the request end to end — they do
// not overlap, so their durations sum to the traced wall time up to
// scheduling jitter; Depth > 0 stages are sub-spans that overlap their
// parent, e.g. portfolio members inside the solve stage):
//
//	decode        wire JSON -> ScheduleRequest
//	canonicalize  validation, canonical graph encoding, fingerprint, cache key
//	mem_tier      memory-tier consult (and singleflight arbitration)
//	singleflight  waiting on an identical in-flight solve
//	disk_tier     persistent-tier consult
//	engine_queue  admission to worker pickup (per-lane queue wait)
//	solve         worker-held solver execution
//	marshal       result -> wire JSON
package obs

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical stage names. Layers record stages under these so the
// per-stage histograms and trace consumers see one taxonomy.
const (
	StageDecode       = "decode"
	StageCanonicalize = "canonicalize"
	StageMemTier      = "mem_tier"
	StageSingleflight = "singleflight"
	StageDiskTier     = "disk_tier"
	StageRemoteTier   = "remote_tier"
	StageWarmSeed     = "warm_seed"
	StageQueue        = "engine_queue"
	StageSolve        = "solve"
	StageMarshal      = "marshal"

	// Proxy-side stages, recorded by dtproxy rather than dtserve.
	StageProxyRoute = "proxy_route"
	StageHedge      = "hedge"
)

// Stages lists every top-level stage name in hot-path order — the order
// a cold solve's trace reports them, and the label set of the per-stage
// duration histograms.
var Stages = []string{
	StageDecode, StageCanonicalize, StageMemTier, StageSingleflight,
	StageDiskTier, StageRemoteTier, StageWarmSeed, StageQueue, StageSolve,
	StageMarshal,
}

// ProxyStages lists the dtproxy-side stage names in request order.
var ProxyStages = []string{StageProxyRoute, StageHedge}

// KV is one key=value annotation on a trace or a stage.
type KV struct {
	Key string
	Val string
}

// Stage is one recorded stage of a trace: a named interval at an offset
// from the trace start. Depth 0 stages tile the request (non-overlapping);
// deeper stages are sub-spans inside a top-level stage (e.g. individual
// portfolio members inside "solve") and overlap their parent.
type Stage struct {
	Name  string
	Depth int
	Start time.Duration // offset from the trace start
	Dur   time.Duration
	Notes []KV
}

// Trace is one request's stage record. Create with NewTrace, carry with
// With/FromContext, snapshot with Snapshot, and return to the pool with
// Release. All methods tolerate a nil receiver (the not-traced fast
// path) and are safe for concurrent use — portfolio members record their
// sub-stages from racing goroutines.
type Trace struct {
	mu     sync.Mutex
	id     string
	t0     time.Time
	stages []Stage
	notes  []KV
}

var tracePool = sync.Pool{New: func() any { return new(Trace) }}

// NewTrace draws a Trace from the pool, stamped with id and starting at
// t0 (zero t0 means now).
func NewTrace(id string, t0 time.Time) *Trace {
	tr := tracePool.Get().(*Trace)
	if t0.IsZero() {
		t0 = time.Now()
	}
	tr.id = id
	tr.t0 = t0
	return tr
}

// Release returns tr to the pool, keeping its stage buffer for reuse.
// The caller must not touch tr afterwards; snapshots taken earlier stay
// valid (they are detached copies).
func Release(tr *Trace) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.id = ""
	tr.t0 = time.Time{}
	tr.stages = tr.stages[:0]
	tr.notes = tr.notes[:0]
	tr.mu.Unlock()
	tracePool.Put(tr)
}

// ID returns the trace's span ID ("" on nil).
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// StartTime returns the trace's monotonic start.
func (tr *Trace) StartTime() time.Time {
	if tr == nil {
		return time.Time{}
	}
	return tr.t0
}

// Span is an open stage returned by Start; End closes it. The zero Span
// (from a nil Trace) is a no-op.
type Span struct {
	tr    *Trace
	name  string
	start time.Time
}

// Start opens a top-level stage now. Nil-safe.
func (tr *Trace) Start(name string) Span {
	if tr == nil {
		return Span{}
	}
	return Span{tr: tr, name: name, start: time.Now()}
}

// End closes the span, recording its duration and any annotations.
func (sp Span) End(notes ...KV) {
	if sp.tr == nil {
		return
	}
	sp.tr.observe(sp.name, 0, sp.start, time.Since(sp.start), notes)
}

// Observe records an already-measured top-level stage. Nil-safe.
func (tr *Trace) Observe(name string, start time.Time, dur time.Duration, notes ...KV) {
	if tr == nil {
		return
	}
	tr.observe(name, 0, start, dur, notes)
}

// ObserveSub records a depth-1 sub-stage (one that overlaps its parent,
// e.g. a portfolio member inside the solve stage). Nil-safe.
func (tr *Trace) ObserveSub(name string, start time.Time, dur time.Duration, notes ...KV) {
	if tr == nil {
		return
	}
	tr.observe(name, 1, start, dur, notes)
}

func (tr *Trace) observe(name string, depth int, start time.Time, dur time.Duration, notes []KV) {
	off := start.Sub(tr.t0)
	if off < 0 {
		off = 0
	}
	tr.mu.Lock()
	tr.stages = append(tr.stages, Stage{Name: name, Depth: depth, Start: off, Dur: dur, Notes: notes})
	tr.mu.Unlock()
}

// Annotate attaches a trace-level key=value note. Nil-safe.
func (tr *Trace) Annotate(key, val string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.notes = append(tr.notes, KV{Key: key, Val: val})
	tr.mu.Unlock()
}

// TraceData is a detached, marshal-ready snapshot of a completed trace —
// what the wire "trace" block, /debug/requests and the request log carry.
// Only Start is wall-clock; everything else is deterministic given the
// request's execution (tests assert on names, order and counts, not
// durations).
type TraceData struct {
	ID      string            `json:"id"`
	Start   time.Time         `json:"start"`
	TotalNS int64             `json:"total_ns"`
	Stages  []StageData       `json:"stages"`
	Notes   map[string]string `json:"notes,omitempty"`
}

// StageData is the wire form of one stage record.
type StageData struct {
	Stage   string            `json:"stage"`
	Depth   int               `json:"depth,omitempty"`
	StartNS int64             `json:"start_ns"`
	DurNS   int64             `json:"duration_ns"`
	Notes   map[string]string `json:"notes,omitempty"`
}

// Snapshot renders the trace into a detached TraceData with the given
// end-to-end total, stages ordered by start offset (ties keep record
// order). The trace itself is untouched, so a snapshot may be taken
// before the final stages land (e.g. for the response body) and again at
// request end.
func (tr *Trace) Snapshot(total time.Duration) *TraceData {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	td := &TraceData{
		ID:      tr.id,
		Start:   tr.t0,
		TotalNS: total.Nanoseconds(),
		Stages:  make([]StageData, len(tr.stages)),
	}
	for i, st := range tr.stages {
		td.Stages[i] = StageData{
			Stage:   st.Name,
			Depth:   st.Depth,
			StartNS: st.Start.Nanoseconds(),
			DurNS:   st.Dur.Nanoseconds(),
			Notes:   kvMap(st.Notes),
		}
	}
	// Insertion sort by start offset: stages are recorded at completion,
	// which is already nearly start-ordered, and the slices are tiny.
	for i := 1; i < len(td.Stages); i++ {
		for j := i; j > 0 && td.Stages[j].StartNS < td.Stages[j-1].StartNS; j-- {
			td.Stages[j], td.Stages[j-1] = td.Stages[j-1], td.Stages[j]
		}
	}
	td.Notes = kvMap(tr.notes)
	return td
}

func kvMap(kvs []KV) map[string]string {
	if len(kvs) == 0 {
		return nil
	}
	m := make(map[string]string, len(kvs))
	for _, kv := range kvs {
		m[kv.Key] = kv.Val
	}
	return m
}

type ctxKey struct{}

// With returns a context carrying tr. With(ctx, nil) strips any trace —
// the portfolio uses this so racing members cannot interleave trace-level
// annotations; their sub-stages are recorded by the portfolio itself.
func With(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the context's trace, or nil — the disabled fast
// path every instrumentation point branches on.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}

// NewID returns a 16-hex-character span ID. IDs are for correlation
// (response header <-> log line <-> /debug/requests entry), not
// security, so a fast non-cryptographic source is fine.
func NewID() string {
	var b [8]byte
	v := rand.Uint64()
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return hex.EncodeToString(b[:])
}

// Sampler is an atomic 1-in-N trace sampler: Sample reports true for
// every N-th call. The rate can be changed at runtime (SetEvery) without
// locking the callers.
type Sampler struct {
	every atomic.Int64
	n     atomic.Uint64
}

// SetEvery sets the sampling rate: 0 (or negative) disables sampling,
// 1 samples everything, N samples one call in N.
func (s *Sampler) SetEvery(n int) { s.every.Store(int64(n)) }

// Every returns the current rate.
func (s *Sampler) Every() int { return int(s.every.Load()) }

// Sample reports whether this call is sampled.
func (s *Sampler) Sample() bool {
	every := s.every.Load()
	if every <= 0 {
		return false
	}
	if every == 1 {
		return true
	}
	return s.n.Add(1)%uint64(every) == 0
}
