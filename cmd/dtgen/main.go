// Command dtgen emits taskgraphs for use with dtsched or external tools:
//
//	dtgen -program NE                 the paper's Newton-Euler graph (JSON)
//	dtgen -program MM -dot            Graphviz dot instead of JSON
//	dtgen -random -layers 6 -width 8  a random layered DAG
//
// Output goes to stdout.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/cliutil"
	"repro/internal/taskgraph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dtgen: ")

	var (
		programKey = flag.String("program", "", "benchmark program: NE, GJ, FFT, MM or graham")
		random     = flag.Bool("random", false, "generate a random layered DAG")
		layers     = flag.Int("layers", 6, "random DAG: layers")
		minWidth   = flag.Int("min-width", 2, "random DAG: minimum layer width")
		maxWidth   = flag.Int("width", 8, "random DAG: maximum layer width")
		minLoad    = flag.Float64("min-load", 5, "random DAG: minimum task duration (µs)")
		maxLoad    = flag.Float64("max-load", 100, "random DAG: maximum task duration (µs)")
		minBits    = flag.Float64("min-bits", 40, "random DAG: minimum edge volume (bits)")
		maxBits    = flag.Float64("max-bits", 400, "random DAG: maximum edge volume (bits)")
		edgeProb   = flag.Float64("edge-prob", 0.3, "random DAG: edge probability")
		seed       = flag.Int64("seed", 1991, "random seed")
		dot        = flag.Bool("dot", false, "emit Graphviz dot instead of JSON")
		stats      = flag.Bool("stats", false, "print characteristics to stderr")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Printf("dtgen %s (%s)\n", buildinfo.Version, buildinfo.GoVersion())
		return
	}

	var g *taskgraph.Graph
	var err error
	switch {
	case *programKey != "" && *random:
		log.Fatal("use either -program or -random, not both")
	case *programKey != "":
		g, err = cliutil.BuildProgram(*programKey)
	case *random:
		cfg := taskgraph.LayeredConfig{
			Layers:   *layers,
			MinWidth: *minWidth,
			MaxWidth: *maxWidth,
			MinLoad:  *minLoad,
			MaxLoad:  *maxLoad,
			MinBits:  *minBits,
			MaxBits:  *maxBits,
			EdgeProb: *edgeProb,
		}
		g, err = taskgraph.Layered(fmt.Sprintf("layered-%d", *seed), cfg, rand.New(rand.NewSource(*seed)))
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *stats {
		st, err := g.ComputeStats(10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%s: %d tasks, %d edges, avg duration %.2f µs, avg comm %.2f µs, max speedup %.2f\n",
			g.Name(), st.Tasks, st.Edges, st.AvgLoad, st.AvgComm, st.MaxSpeedup)
	}
	if *dot {
		fmt.Print(g.DOT())
		return
	}
	if err := g.WriteJSON(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
