// Command dtexp regenerates the tables and figures of D'Hollander & Devis
// (ICPP 1991):
//
//	dtexp -table1            program characteristics (Table 1)
//	dtexp -table2            SA vs HLF speedups (Table 2)
//	dtexp -fig1              annealing cost trajectories (Figure 1)
//	dtexp -fig2              Newton-Euler Gantt chart (Figure 2)
//	dtexp -packets           §6a packet statistics
//	dtexp -anomaly           §6b Graham anomaly comparison
//	dtexp -ablations         weight sweep, cooling, random graphs, static
//	                         mapping, exact-optimum and policy-zoo studies
//	dtexp -scaling           speedup-vs-processors curves
//	dtexp -all               everything above
//	dtexp -loadgen           drive a dtserve instance with synthetic
//	                         scheduling traffic and report throughput
//
// All experiments are deterministic for a given -seed. The loadgen mode
// targets -addr when given, or starts an in-process dtserve-equivalent
// server on a loopback port otherwise.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/chaos"
	"repro/internal/expt"
	"repro/internal/proxy"
	"repro/internal/service"
	"repro/internal/solver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dtexp: ")

	var (
		table1    = flag.Bool("table1", false, "reproduce Table 1")
		table2    = flag.Bool("table2", false, "reproduce Table 2")
		fig1      = flag.Bool("fig1", false, "reproduce Figure 1")
		fig1CSV   = flag.Bool("fig1-csv", false, "emit Figure 1 data as CSV")
		fig2      = flag.Bool("fig2", false, "reproduce Figure 2")
		packets   = flag.Bool("packets", false, "report §6a packet statistics")
		anomaly   = flag.Bool("anomaly", false, "run the §6b Graham anomaly comparison")
		ablations = flag.Bool("ablations", false, "run the ablation studies")
		scaling   = flag.Bool("scaling", false, "run the processor-scaling study")
		all       = flag.Bool("all", false, "run every experiment")
		seed      = flag.Int64("seed", 1991, "random seed")
		restarts  = flag.Int("restarts", 0, "SA restarts per Table 2 cell (0 = default of 3)")

		loadgen     = flag.Bool("loadgen", false, "generate scheduling-service traffic and report throughput")
		addr        = flag.String("addr", "", "dtserve base URL for -loadgen (empty = start an in-process server)")
		requests    = flag.Int("requests", 200, "loadgen request count")
		concurrency = flag.Int("concurrency", 8, "loadgen in-flight clients")
		distinct    = flag.Int("distinct", 8, "loadgen distinct payloads (controls the cache hit ratio)")
		lgSolver    = flag.String("lg-solver", "", "loadgen solver name (empty = server default)")
		lgCacheDir  = flag.String("lg-cache-dir", "", "persistent cache dir for the in-process loadgen server (empty = memory only)")
		lgBatch     = flag.Int("lg-batch", 0, "loadgen batch size: > 0 streams batches of this many items over NDJSON and reports first-item vs last-item latency")
		lgLane      = flag.String("lg-lane", "", "QoS lane tag on every loadgen request: interactive or batch (empty = server default)")
		lgMemberTO  = flag.Duration("lg-member-timeout", 0, "per-member portfolio budget on every loadgen request (0 omits the field)")
		lgTrace     = flag.Int("lg-trace", 0, "loadgen: trace every Nth request and report a per-stage latency breakdown (0 disables)")
		lgWarm      = flag.Bool("lg-warm", false, "loadgen: pre-seed every distinct payload before the clock starts, so the run measures the pure warm-hit RPS and latency floor")
		lgDelta     = flag.Bool("lg-delta", false, "loadgen: solve each distinct payload once for its content address, then drive /v1/schedule/delta edits against those bases and report how many answers warm-started")
		lgFleet     = flag.Int("lg-fleet", 0, "loadgen: > 0 starts an in-process fleet of this many dtserve replicas behind dtcached + dtproxy and drives the proxy; reports the fleet-wide RPS and the per-replica hit/solve split (ignores -addr and -lg-cache-dir)")

		lgOverload   = flag.Bool("lg-overload", false, "run the two-phase overload scenario: unloaded interactive probes, then the same probes under a batch-lane flood")
		lgAssertFlat = flag.Float64("lg-assert-flat", 0, "overload verdict: fail unless loaded interactive p99 <= this factor of the unloaded baseline and every shed carries Retry-After (0 = report only)")

		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Printf("dtexp %s (%s)\n", buildinfo.Version, buildinfo.GoVersion())
		return
	}

	if *all {
		*table1, *table2, *fig1, *fig2, *packets, *anomaly, *ablations, *scaling = true, true, true, true, true, true, true, true
	}
	if *lgOverload {
		if err := runOverload(*addr, *requests, *concurrency, *lgSolver, *lgAssertFlat); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *loadgen {
		if *lgFleet > 0 {
			if err := runFleetLoadgen(*lgFleet, *requests, *concurrency, *distinct, *lgBatch, *lgSolver, *lgLane, *lgWarm); err != nil {
				log.Fatal(err)
			}
			return
		}
		if err := runLoadgen(*addr, *requests, *concurrency, *distinct, *lgBatch, *lgTrace, *lgSolver, *lgCacheDir, *lgLane, *lgMemberTO, *lgWarm, *lgDelta); err != nil {
			log.Fatal(err)
		}
		return
	}
	if !(*table1 || *table2 || *fig1 || *fig1CSV || *fig2 || *packets || *anomaly || *ablations || *scaling) {
		flag.Usage()
		os.Exit(2)
	}

	if *table1 {
		rows, err := expt.Table1()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(expt.FormatTable1(rows))
	}
	if *table2 {
		rows, err := expt.Table2(expt.Table2Config{Seed: *seed, Restarts: *restarts, Workers: runtime.NumCPU()})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(expt.FormatTable2(rows))
	}
	if *fig1 || *fig1CSV {
		fig, err := expt.Figure1(*seed)
		if err != nil {
			log.Fatal(err)
		}
		if *fig1CSV {
			fmt.Print(fig.CSV())
		} else {
			fmt.Println(fig.Plot(100, 24))
		}
	}
	if *fig2 {
		chart, res, err := expt.Figure2(*seed, 0, 120)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(chart)
		fmt.Printf("SA schedule: makespan %.2f µs, speedup %.2f, %d messages\n\n",
			res.Makespan, res.Speedup, res.Messages)
	}
	if *packets {
		ps, err := expt.Packets(*seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Packet statistics (§6a), Newton-Euler on the 8-node hypercube:\n")
		fmt.Printf("  %d tasks assigned in %d annealing packets\n", ps.TasksTotal, ps.Packets)
		fmt.Printf("  on average %.2f candidates for %.2f free processors\n",
			ps.AvgCandidates, ps.AvgIdle)
		fmt.Printf("  (the paper reports 95 tasks, 65 packets, 15 candidates, 1.46 processors)\n\n")
	}
	if *anomaly {
		res, err := expt.Anomaly(*seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res)
	}
	if *ablations {
		archs, err := expt.Architectures()
		if err != nil {
			log.Fatal(err)
		}
		pts, err := expt.AblationWeights("NE", archs[2], *seed, 0.1, 0.9, 9)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(expt.FormatWeights("NE", archs[2].Name, pts))
		cool, err := expt.AblationCooling("NE", archs[0], *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(expt.FormatCooling("NE", archs[0].Name, cool))
		for _, withComm := range []bool{false, true} {
			study, err := expt.AblationRandomGraphs(archs[0], 40, withComm, *seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(study)
		}
		fmt.Println()
		static, err := expt.AblationStatic(*seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(expt.FormatStatic(static))
		optStudy, err := expt.AblationOptimal(60, 3, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(optStudy)
		fmt.Println()
		zoo, err := expt.PolicyComparison(*seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(expt.FormatPolicyComparison(zoo))
	}
	if *scaling {
		for _, key := range []string{"NE", "MM"} {
			pts, err := expt.Scaling(key, 4, *seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(expt.FormatScaling(key, pts))
		}
	}
}

// runLoadgen drives a scheduling service with synthetic traffic. With an
// empty addr it starts an in-process server on a loopback port — the
// zero-setup way to measure service throughput and cache behaviour. A
// cacheDir gives that server the persistent disk tier, so back-to-back
// runs over the same dir measure the disk-hit path. A batch size > 0
// exercises the streaming batch endpoint instead, reporting first-item
// and last-item latency separately. traceEvery > 0 traces every Nth
// request and reports where the time went, stage by stage. warm
// pre-seeds every distinct payload before timing, so the reported
// throughput and percentiles are the pure warm-hit serving floor.
func runLoadgen(addr string, requests, concurrency, distinct, batch, traceEvery int, solverName, cacheDir, lane string, memberTO time.Duration, warm, delta bool) error {
	var svc *service.Server
	if addr == "" {
		var err error
		svc, err = service.New(service.Config{CacheSize: 4096, CacheDir: cacheDir})
		if err != nil {
			return err
		}
		defer svc.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 10 * time.Second}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		addr = "http://" + ln.Addr().String()
		fmt.Printf("loadgen: in-process server on %s (%d workers, 4096 cache entries)\n",
			addr, runtime.GOMAXPROCS(0))
	}

	report, err := service.LoadGen(service.LoadGenConfig{
		URL:             strings.TrimSuffix(addr, "/"),
		Requests:        requests,
		Concurrency:     concurrency,
		Distinct:        distinct,
		Batch:           batch,
		Solver:          solverName,
		Lane:            lane,
		MemberTimeoutMS: int(memberTO.Milliseconds()),
		TraceEvery:      traceEvery,
		Warm:            warm,
		Delta:           delta,
	})
	if err != nil {
		return err
	}
	fmt.Print(report)
	if svc != nil {
		st := svc.Stats()
		fmt.Printf("  server: %d solves for %d requests (memory: %d hits, %d misses, %d entries; disk: %d hits, %d writes)\n",
			st.Solves, st.Requests, st.Cache.Hits, st.Cache.Misses, st.Cache.Entries, st.Disk.Hits, st.Disk.Writes)
		if delta {
			fmt.Printf("  server: %d warm-started solves, %d annealing stages saved\n",
				st.WarmHits, st.WarmEpochsSaved)
		}
	}
	return nil
}

// runFleetLoadgen drives an in-process fleet — n dtserve replicas behind
// a shared dtcached and a dtproxy front — through the proxy, then prints
// the fleet-wide report plus the per-replica hit/solve split. Hedging is
// disabled so every solve in the split is a routing decision, not a
// duplicated race; with -lg-warm the timed numbers are the fleet's pure
// warm-hit serving floor, including remote-tier hits where routing moved
// a key's follow-up traffic across replicas.
func runFleetLoadgen(n, requests, concurrency, distinct, batch int, solverName, lane string, warm bool) error {
	fleet, err := service.RunFleet(service.FleetConfig{
		Replicas: n,
		Server:   service.Config{CacheSize: 4096},
		Proxy:    proxy.Config{HedgeDelay: -1},
	})
	if err != nil {
		return err
	}
	defer fleet.Close()
	fmt.Printf("loadgen: in-process fleet: %d replicas behind dtproxy %s (dtcached %s)\n",
		n, fleet.ProxyURL, fleet.CachedAddr)

	report, err := service.LoadGen(service.LoadGenConfig{
		URL:         fleet.ProxyURL,
		Requests:    requests,
		Concurrency: concurrency,
		Distinct:    distinct,
		Batch:       batch,
		Solver:      solverName,
		Lane:        lane,
		Warm:        warm,
	})
	if err != nil {
		return err
	}
	fmt.Print(report)

	fs := fleet.Stats()
	fmt.Printf("  fleet: %d solves for %d items (memory: %d, disk: %d, remote: %d, coalesced: %d)\n",
		fs.Solves, fs.Items, fs.MemHits, fs.DiskHits, fs.RemoteHits, fs.Coalesced)
	for i, st := range fs.PerReplica {
		fmt.Printf("    replica %d  %6d items  %6d solves  %6d mem  %6d disk  %6d remote  %6d coalesced\n",
			i, st.Items, st.Solves, st.Cache.Hits, st.Disk.Hits, st.Remote.Hits, st.Coalesced)
		if err := service.CheckLaw(st); err != nil {
			return fmt.Errorf("replica %d: %w", i, err)
		}
	}
	ps := fleet.Proxy.Stats()
	fmt.Printf("    proxy      %6d requests  %6d rerouted  %6d hedges (%d won)  %6d unrouted\n",
		ps.Requests, ps.Reroutes, ps.Hedges, ps.HedgeWins, ps.Unrouted)
	return nil
}

// runOverload runs the two-phase QoS overload scenario. With an empty
// addr it starts an in-process server with deliberately tight budgets —
// a small fixed pool, shallow batch queue and a 25ms queue-delay target
// — so a modest flood overloads it reproducibly on any machine: the
// point is the shape of the degradation (flat interactive percentiles,
// structured 429s on the flood), not absolute throughput.
//
// The flood runs on a chaos-delayed solver (40ms injected latency over
// hlf): flood solves hold workers without holding the CPU, so on a
// small CI machine the probes measure lane scheduling rather than core
// contention. The delay doubles as a rate limit — 16 workers at 40ms
// cap the flood near 400 solved requests/s, little enough HTTP churn
// that a single core can absorb it without inflating probe latencies.
func runOverload(addr string, probes, floodConcurrency int, solverName string, assertFlat float64) error {
	floodSolver := solverName
	var svc *service.Server
	if addr == "" {
		under, err := solver.Get("hlf")
		if err != nil {
			return err
		}
		// Half jitter on the injected delay: an exact fixed delay would
		// march all 16 workers in lockstep (simultaneous completions,
		// forever), making an interactive probe wait out a whole flood
		// solve instead of the ~delay/16 gap between staggered
		// completions.
		flood := chaos.NewFlakySolver("floodmo", under, chaos.Config{
			SolverDelay: 40 * time.Millisecond, SolverJitter: 0.5, Seed: 1991,
		})
		if err := solver.Register(flood); err != nil {
			return err
		}
		floodSolver = flood.Name()
		svc, err = service.New(service.Config{
			CacheSize:        4096,
			Workers:          16,
			MaxWorkers:       16,
			QueueDepth:       64,
			QueueDelayTarget: 25 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		defer svc.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 10 * time.Second}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		addr = "http://" + ln.Addr().String()
		// The flood must hold more requests in flight than workers plus
		// the ~25ms of queue the delay target allows (~10 jobs at 40ms
		// solves on 16 workers), or admission control never trips. The
		// surplus above ~26 is what sheds; keeping it modest keeps the
		// 429 churn off the probes' core.
		if floodConcurrency < 40 {
			floodConcurrency = 40
		}
		fmt.Printf("overload: in-process server on %s (16 workers, queue depth 64, 25ms delay target, 40ms flood solves)\n", addr)
	}

	report, err := service.RunOverload(service.OverloadConfig{
		URL:              strings.TrimSuffix(addr, "/"),
		Probes:           probes,
		FloodConcurrency: floodConcurrency,
		Solver:           solverName,
		FloodSolver:      floodSolver,
		FloodPrograms:    []string{"graham"},
		AssertFlat:       assertFlat,
	})
	if report != nil {
		fmt.Print(report)
		if svc != nil {
			st := svc.Stats()
			fmt.Printf("  server: %d shed, lanes: %+v\n", st.Shed, st.Pool.Lanes)
		}
	}
	return err
}
