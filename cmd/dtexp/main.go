// Command dtexp regenerates the tables and figures of D'Hollander & Devis
// (ICPP 1991):
//
//	dtexp -table1            program characteristics (Table 1)
//	dtexp -table2            SA vs HLF speedups (Table 2)
//	dtexp -fig1              annealing cost trajectories (Figure 1)
//	dtexp -fig2              Newton-Euler Gantt chart (Figure 2)
//	dtexp -packets           §6a packet statistics
//	dtexp -anomaly           §6b Graham anomaly comparison
//	dtexp -ablations         weight sweep, cooling, random graphs, static
//	                         mapping, exact-optimum and policy-zoo studies
//	dtexp -scaling           speedup-vs-processors curves
//	dtexp -all               everything above
//
// All experiments are deterministic for a given -seed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"repro/internal/expt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dtexp: ")

	var (
		table1    = flag.Bool("table1", false, "reproduce Table 1")
		table2    = flag.Bool("table2", false, "reproduce Table 2")
		fig1      = flag.Bool("fig1", false, "reproduce Figure 1")
		fig1CSV   = flag.Bool("fig1-csv", false, "emit Figure 1 data as CSV")
		fig2      = flag.Bool("fig2", false, "reproduce Figure 2")
		packets   = flag.Bool("packets", false, "report §6a packet statistics")
		anomaly   = flag.Bool("anomaly", false, "run the §6b Graham anomaly comparison")
		ablations = flag.Bool("ablations", false, "run the ablation studies")
		scaling   = flag.Bool("scaling", false, "run the processor-scaling study")
		all       = flag.Bool("all", false, "run every experiment")
		seed      = flag.Int64("seed", 1991, "random seed")
		restarts  = flag.Int("restarts", 0, "SA restarts per Table 2 cell (0 = default of 3)")
	)
	flag.Parse()

	if *all {
		*table1, *table2, *fig1, *fig2, *packets, *anomaly, *ablations, *scaling = true, true, true, true, true, true, true, true
	}
	if !(*table1 || *table2 || *fig1 || *fig1CSV || *fig2 || *packets || *anomaly || *ablations || *scaling) {
		flag.Usage()
		os.Exit(2)
	}

	if *table1 {
		rows, err := expt.Table1()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(expt.FormatTable1(rows))
	}
	if *table2 {
		rows, err := expt.Table2(expt.Table2Config{Seed: *seed, Restarts: *restarts, Workers: runtime.NumCPU()})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(expt.FormatTable2(rows))
	}
	if *fig1 || *fig1CSV {
		fig, err := expt.Figure1(*seed)
		if err != nil {
			log.Fatal(err)
		}
		if *fig1CSV {
			fmt.Print(fig.CSV())
		} else {
			fmt.Println(fig.Plot(100, 24))
		}
	}
	if *fig2 {
		chart, res, err := expt.Figure2(*seed, 0, 120)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(chart)
		fmt.Printf("SA schedule: makespan %.2f µs, speedup %.2f, %d messages\n\n",
			res.Makespan, res.Speedup, res.Messages)
	}
	if *packets {
		ps, err := expt.Packets(*seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Packet statistics (§6a), Newton-Euler on the 8-node hypercube:\n")
		fmt.Printf("  %d tasks assigned in %d annealing packets\n", ps.TasksTotal, ps.Packets)
		fmt.Printf("  on average %.2f candidates for %.2f free processors\n",
			ps.AvgCandidates, ps.AvgIdle)
		fmt.Printf("  (the paper reports 95 tasks, 65 packets, 15 candidates, 1.46 processors)\n\n")
	}
	if *anomaly {
		res, err := expt.Anomaly(*seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res)
	}
	if *ablations {
		archs, err := expt.Architectures()
		if err != nil {
			log.Fatal(err)
		}
		pts, err := expt.AblationWeights("NE", archs[2], *seed, 0.1, 0.9, 9)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(expt.FormatWeights("NE", archs[2].Name, pts))
		cool, err := expt.AblationCooling("NE", archs[0], *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(expt.FormatCooling("NE", archs[0].Name, cool))
		for _, withComm := range []bool{false, true} {
			study, err := expt.AblationRandomGraphs(archs[0], 40, withComm, *seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(study)
		}
		fmt.Println()
		static, err := expt.AblationStatic(*seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(expt.FormatStatic(static))
		optStudy, err := expt.AblationOptimal(60, 3, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(optStudy)
		fmt.Println()
		zoo, err := expt.PolicyComparison(*seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(expt.FormatPolicyComparison(zoo))
	}
	if *scaling {
		for _, key := range []string{"NE", "MM"} {
			pts, err := expt.Scaling(key, 4, *seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(expt.FormatScaling(key, pts))
		}
	}
}
