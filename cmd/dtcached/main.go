// Command dtcached is the fleet-shared remote cache daemon: a
// byte-budgeted LRU of content-addressed schedule results behind the
// length-prefixed get/put protocol in internal/remotecache.
//
//	dtcached -addr :7070 -max-bytes 268435456
//
// dtserve replicas point -remote-addr at it and slot it into their tier
// ladder as memory → disk → remote → solve. Values are opaque sealed
// bytes (the replicas checksum on read), keys are the replicas' SHA-256
// content addresses, and a key's bytes are immutable — so the daemon
// needs no invalidation protocol and any replica may fill any key.
// SIGINT/SIGTERM close the listener and sever connections (every
// response is a single write, so no frame is ever truncated), then exit.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/remotecache"
)

func main() {
	var (
		addr     = flag.String("addr", ":7070", "listen address")
		maxBytes = flag.Int64("max-bytes", 0, "value byte budget, LRU-evicted past it (0 = 256 MiB)")
		idle     = flag.Duration("idle-timeout", 0, "close connections idle longer than this (0 = 5m)")
		quiet    = flag.Bool("quiet", false, "disable connection/error logging")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Printf("dtcached %s (%s)\n", buildinfo.Version, buildinfo.GoVersion())
		return
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	cfg := remotecache.ServerConfig{MaxBytes: *maxBytes, IdleTimeout: *idle}
	if !*quiet {
		cfg.Logger = logger
	}
	srv := remotecache.NewServer(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen", "err", err)
		os.Exit(1)
	}
	logger.Info("listening", "addr", ln.Addr().String(), "version", buildinfo.Version,
		"max_bytes", *maxBytes)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil {
			logger.Error("serve", "err", err)
			os.Exit(1)
		}
	case <-sig:
	}

	st := srv.Stats()
	logger.Info("draining", "entries", st.Entries, "bytes", st.Bytes,
		"hits", st.Hits, "misses", st.Misses)
	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		logger.Error("shutdown timed out")
		os.Exit(1)
	}
}
