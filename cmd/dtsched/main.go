// Command dtsched schedules one taskgraph on one machine and reports the
// simulated execution:
//
//	dtsched -program NE -topo hypercube:3 -policy sa -gantt
//	dtsched -graph app.json -topo ring:9 -policy hlf -nocomm
//	dtsched -program FFT -policy portfolio -json
//
// The taskgraph comes either from a benchmark generator (-program) or
// from a JSON file written by dtgen or taskgraph.WriteJSON (-graph).
// Policies resolve through the same solver registry the dtserve service
// uses, so "portfolio", "optimal" and "auto" work here too, and -json
// emits the service's wire Result schema — CLI and server outputs are
// directly diffable.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gantt"
	"repro/internal/machsim"
	"repro/internal/schedule"
	"repro/internal/service"
	"repro/internal/solver"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dtsched: ")

	var (
		programKey = flag.String("program", "", "benchmark program: NE, GJ, FFT, MM or graham")
		graphFile  = flag.String("graph", "", "taskgraph JSON file")
		topoSpec   = flag.String("topo", "hypercube:3", "machine topology (kind:arg)")
		policyName = flag.String("policy", "sa", "solver: sa, hlf, hlfcomm, etf, lpt, misf, fifo, random, optimal, auto or portfolio")
		seed       = flag.Int64("seed", 1991, "random seed for stochastic policies")
		restarts   = flag.Int("restarts", 0, "SA restarts per packet (0/1 = single run)")
		noComm     = flag.Bool("nocomm", false, "disable communication costs")
		wb         = flag.Float64("wb", 0.5, "SA balance weight (wc = 1 - wb)")
		timeout    = flag.Duration("timeout", 0, "abort the solve after this long (0 = no limit)")
		memberTO   = flag.Duration("member-timeout", 0, "portfolio only: per-member solve budget, on top of -timeout (0 = no limit)")
		jsonOut    = flag.Bool("json", false, "emit the service wire Result JSON instead of text")
		showGantt  = flag.Bool("gantt", false, "render a Gantt chart")
		ganttWidth = flag.Int("gantt-width", 120, "Gantt chart width in columns")
		showUtil   = flag.Bool("util", false, "report per-processor utilization")
		showStats  = flag.Bool("stats", false, "report taskgraph characteristics")
		exportPath = flag.String("export", "", "write the schedule as JSON to this file (verified first)")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Printf("dtsched %s (%s)\n", buildinfo.Version, buildinfo.GoVersion())
		return
	}

	g, err := loadGraph(*programKey, *graphFile)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := cliutil.ParseTopology(*topoSpec)
	if err != nil {
		log.Fatal(err)
	}
	comm := topology.DefaultCommParams()
	if *noComm {
		comm = comm.NoComm()
	}

	saOpt := core.DefaultOptions()
	saOpt.Seed = *seed
	saOpt.Wb = *wb
	saOpt.Wc = 1 - *wb
	saOpt.Restarts = *restarts

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *showStats && !*jsonOut {
		st, err := g.ComputeStats(comm.Bandwidth)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d tasks, %d edges, avg duration %.2f µs, avg comm %.2f µs, C/C %.1f%%, max speedup %.2f\n\n",
			g.Name(), st.Tasks, st.Edges, st.AvgLoad, st.AvgComm, 100*st.CCRatio, st.MaxSpeedup)
	}

	slv, err := solver.Get(*policyName)
	if err != nil {
		log.Fatal(err)
	}
	// The CLI is a single solve, but it still routes through the shared
	// orchestration layer — the same worker-owned arena + pooled-scheduler
	// path the service and the experiment harness use, so all front-ends
	// exercise (and stay byte-identical with) one engine.
	eng := engine.New(engine.Config{Workers: 1})
	defer eng.Close()
	res, err := eng.Solve(ctx, engine.Job{Solver: slv, Req: solver.Request{
		Graph: g, Topo: topo, Comm: comm, SA: saOpt,
		Portfolio: solver.PortfolioOptions{MemberTimeout: *memberTO},
		Sim:       machsim.Options{RecordGantt: *showGantt},
	}})
	if err != nil {
		log.Fatal(err)
	}

	if *jsonOut {
		wire, err := service.ResultFromSim(res, g, topo.Name())
		if err != nil {
			log.Fatal(err)
		}
		// Plain json.Marshal matches the server's body encoding exactly, so
		// CLI and server outputs differ only by this trailing newline.
		data, err := json.Marshal(wire)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(append(data, '\n'))
	} else {
		fmt.Printf("%s on %s with %s:\n", g.Name(), topo.Name(), res.Policy)
		fmt.Printf("  makespan   %10.2f µs\n", res.Makespan)
		fmt.Printf("  T1         %10.2f µs\n", res.SequentialTime)
		fmt.Printf("  speedup    %10.2f\n", res.Speedup)
		fmt.Printf("  messages   %7d (%.2f µs transfer, %.2f µs σ/τ overhead)\n",
			res.Messages, res.TransferTime, res.OverheadTime)
		fmt.Printf("  epochs     %7d (avg %.2f candidates for %.2f idle processors)\n",
			len(res.Epochs), res.AvgReady(), res.AvgIdle())
		fmt.Printf("  utilization %9.1f%%\n", 100*res.Utilization())
	}

	if *exportPath != "" {
		sched, err := schedule.FromResult(res)
		if err != nil {
			log.Fatal(err)
		}
		if err := sched.Validate(g, topo, comm); err != nil {
			log.Fatalf("schedule failed independent validation: %v", err)
		}
		f, err := os.Create(*exportPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := sched.WriteJSON(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		if !*jsonOut {
			fmt.Printf("  schedule exported to %s (independently validated)\n", *exportPath)
		}
	}

	if *showUtil && !*jsonOut {
		fmt.Println()
		fmt.Print(gantt.Utilization(res))
	}
	if *showGantt && !*jsonOut {
		if res.Gantt == nil {
			fmt.Println("\n(no Gantt trace: the winning solver computed an exact schedule without simulation)")
		} else {
			fmt.Println()
			fmt.Print(gantt.Render(res, topo.N(), gantt.Config{Width: *ganttWidth, ShowLegend: true}))
		}
	}
}

func loadGraph(programKey, graphFile string) (*taskgraph.Graph, error) {
	switch {
	case programKey != "" && graphFile != "":
		return nil, fmt.Errorf("use either -program or -graph, not both")
	case programKey != "":
		return cliutil.BuildProgram(programKey)
	case graphFile != "":
		f, err := os.Open(graphFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return taskgraph.ReadJSON(f)
	default:
		return nil, fmt.Errorf("no taskgraph: pass -program or -graph")
	}
}
