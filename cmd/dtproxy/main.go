// Command dtproxy is the routing front of a dtserve replica fleet:
//
//	dtproxy -addr :8000 -replicas http://10.0.0.1:8080,http://10.0.0.2:8080
//
// Each schedule request's graph is fingerprinted with the zero-copy
// canonicalizer (no full decode) and consistent-hashed across the
// replicas, so every cache key's singleflight leadership lands on
// exactly one node fleet-wide — N replicas' duplicate cold solves
// collapse into one, and the shared dtcached tier replays it everywhere
// else. The proxy probes each replica's /healthz, ejects after
// consecutive failures, readmits after recovery, falls back along the
// ring on transport errors, and hedges slow interactive requests to the
// next ring replica after a p99-derived (or -hedge fixed) delay.
//
// Own endpoints: GET /healthz (ok while ≥ 1 replica is healthy),
// GET /statsz, GET /metrics (dtproxy_* families), GET /debug/requests.
// Everything else is routed. Responses carry X-DTProxy-Replica naming
// the replica that answered (and X-DTProxy-Hedged: 1 when the hedge
// won).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/proxy"
)

func main() {
	var (
		addr         = flag.String("addr", ":8000", "listen address")
		replicas     = flag.String("replicas", "", "comma-separated dtserve base URLs (required)")
		vnodes       = flag.Int("vnodes", 0, "consistent-hash points per replica (0 = 128)")
		healthEvery  = flag.Duration("health-interval", 0, "replica probe period (0 = 250ms)")
		healthTO     = flag.Duration("health-timeout", 0, "replica probe budget (0 = 1s)")
		failAfter    = flag.Int("fail-after", 0, "consecutive probe failures before ejection (0 = 2)")
		readmitAfter = flag.Int("readmit-after", 0, "consecutive healthy probes before readmission (0 = 2)")
		hedge        = flag.String("hedge", "auto", "interactive hedge delay: a duration, \"auto\" (p99-derived), or \"off\"")
		hedgeSamples = flag.Int("hedge-min-samples", 0, "observed responses before auto hedging arms (0 = 50)")
		reqTimeout   = flag.Duration("request-timeout", 0, "per-attempt upstream budget (0 = 120s)")
		traceSample  = flag.Int("trace-sample", 64, "trace one in N routed requests into /debug/requests (0 disables)")
		quiet        = flag.Bool("quiet", false, "disable routing/health logging")
		logFormat    = flag.String("log-format", "text", "log encoding: text or json")
		version      = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Printf("dtproxy %s (%s)\n", buildinfo.Version, buildinfo.GoVersion())
		return
	}

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "dtproxy: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	if strings.TrimSpace(*replicas) == "" {
		fmt.Fprintln(os.Stderr, "dtproxy: -replicas is required")
		os.Exit(2)
	}
	var names []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			names = append(names, r)
		}
	}

	cfg := proxy.Config{
		Replicas:        names,
		VNodes:          *vnodes,
		HealthInterval:  *healthEvery,
		HealthTimeout:   *healthTO,
		FailAfter:       *failAfter,
		ReadmitAfter:    *readmitAfter,
		HedgeMinSamples: *hedgeSamples,
		RequestTimeout:  *reqTimeout,
		TraceSample:     *traceSample,
	}
	switch *hedge {
	case "auto":
		cfg.HedgeDelay = 0
	case "off":
		cfg.HedgeDelay = -1
	default:
		d, err := time.ParseDuration(*hedge)
		if err != nil || d <= 0 {
			fmt.Fprintf(os.Stderr, "dtproxy: bad -hedge %q (want a positive duration, \"auto\" or \"off\")\n", *hedge)
			os.Exit(2)
		}
		cfg.HedgeDelay = d
	}
	if !*quiet {
		cfg.Logger = logger
	}

	p, err := proxy.New(cfg)
	if err != nil {
		logger.Error("startup", "err", err)
		os.Exit(1)
	}
	defer p.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           p.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	logger.Info("listening", "addr", *addr, "version", buildinfo.Version,
		"replicas", len(names), "hedge", *hedge)

	select {
	case err := <-errCh:
		logger.Error("listen", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("shutdown", "err", err)
	}
}
