// Command dtserve serves the taskgraph scheduling API over HTTP/JSON:
//
//	dtserve -addr :8080 -workers 8 -cache 4096 -solver portfolio
//
// Endpoints: POST /v1/schedule, POST /v1/schedule/batch (NDJSON streaming
// with "Accept: application/x-ndjson": items flush as their solves
// complete), GET /v1/solvers, GET /healthz, GET /statsz, GET /metrics,
// GET /debug/requests (recent + slowest request traces).
// Solves run on the shared internal/engine worker pool, split into an
// interactive lane (single schedule calls) and a batch lane (batch
// members) with weighted dequeue, per-lane admission control (shed
// requests get a structured 429 with Retry-After) and an adaptive
// worker pool bounded by -workers/-max-workers. Identical payloads
// produce byte-identical responses; completed results are memoized in a
// content-addressed LRU cache (cache status in the X-DTServe-Cache
// header), optionally backed by a persistent disk tier (-cache-dir) so
// a restarted server replays its warm set without re-solving, and by a
// fleet-shared remote tier (-remote-addr, a dtcached daemon) so one
// replica's cold solve becomes every other replica's warm hit.
// SIGINT/SIGTERM put the server in draining mode (healthz reports 503,
// new work is refused with 503 + Retry-After) and flush in-flight
// streams — and the disk tier's write-behind queue — before exiting.
//
// Observability: every response carries an X-DTServe-Trace-Id header;
// "trace": true in the request body (or ?trace=1) returns a per-stage
// timing breakdown in the response envelope; -trace-sample N
// additionally samples one in N untraced requests into the
// /debug/requests ring and the per-stage /metrics histograms. Request
// logs go to stderr on log/slog; -log-format json emits one JSON object
// per request for log pipelines. -debug-addr serves net/http/pprof on a
// private listener, kept off the public API address.
//
// The -chaos flag turns on the fault-injection harness from
// internal/chaos for resilience drills, e.g.
//
//	dtserve -cache-dir /tmp/dt -chaos 'disk-err=0.2,disk-delay=2ms,solver-err=0.05,seed=7'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/chaos"
	"repro/internal/service"
	"repro/internal/solver"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "base solver pool size (0 = one per CPU)")
		maxWorkers  = flag.Int("max-workers", 0, "adaptive pool ceiling under queue pressure (0 = fixed at -workers)")
		queueDepth  = flag.Int("queue-depth", 0, "per-lane admission budget in queued jobs (0 = 1024)")
		delayTarget = flag.String("queue-delay-target", "0s", "shed a lane once its head-of-queue age exceeds this (0 disables); \"auto\" derives per-lane targets from observed p95 delay")
		laneWeight  = flag.Int("interactive-weight", 0, "interactive jobs dequeued per batch job when both lanes wait (0 = 4)")
		cacheSize   = flag.Int("cache", 4096, "result cache capacity in entries (0 disables)")
		cacheBytes  = flag.Int64("cache-bytes", 0, "result cache byte budget (0 = 256 MiB)")
		cacheDir    = flag.String("cache-dir", "", "persistent disk cache directory: restarts keep the warm set (empty disables)")
		diskBytes   = flag.Int64("disk-cache-bytes", 0, "disk cache byte budget (0 = 1 GiB)")
		remoteAddr  = flag.String("remote-addr", "", "dtcached daemon host:port, the fleet-shared remote cache tier (empty disables)")
		remoteTO    = flag.Duration("remote-timeout", 0, "remote tier round-trip budget; slower consults degrade to a miss (0 = 250ms)")
		solverDef   = flag.String("solver", "sa", "default solver for requests that name none")
		warm        = flag.Bool("warm", false, "warm-start SA requests that miss every cache tier from the nearest cached solve (similarity index); /v1/schedule/delta warms regardless")
		warmMaxDist = flag.Float64("warm-max-distance", 0, "maximum sketch distance for index-picked warm seeds (0 = 0.5)")
		simIndex    = flag.Int("sim-index", 0, "similarity index capacity in entries (0 = 4096)")
		timeout     = flag.Duration("timeout", 0, "default per-request solve timeout (0 = none)")
		maxBatch    = flag.Int("max-batch", 256, "maximum requests per batch call")
		chaosSpec   = flag.String("chaos", "", "fault-injection spec, e.g. 'disk-err=0.2,disk-delay=2ms,solver-err=0.05,seed=7' (empty disables)")
		quiet       = flag.Bool("quiet", false, "disable per-request logging")
		logFormat   = flag.String("log-format", "text", "request log encoding: text or json")
		traceSample = flag.Int("trace-sample", 64, "trace one in N untraced requests into /debug/requests and the stage histograms (0 = explicit traces only)")
		traceRecent = flag.Int("trace-recent", 0, "recent traces retained by /debug/requests (0 = 64)")
		traceSlow   = flag.Int("trace-slowest", 0, "slowest traces retained by /debug/requests (0 = 16)")
		debugAddr   = flag.String("debug-addr", "", "private listen address for net/http/pprof (empty disables)")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Printf("dtserve %s (%s)\n", buildinfo.Version, buildinfo.GoVersion())
		return
	}

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "dtserve: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	cfg := service.Config{
		Workers:           *workers,
		MaxWorkers:        *maxWorkers,
		QueueDepth:        *queueDepth,
		InteractiveWeight: *laneWeight,
		CacheSize:         *cacheSize,
		CacheBytes:        *cacheBytes,
		CacheDir:          *cacheDir,
		DiskCacheBytes:    *diskBytes,
		RemoteAddr:        *remoteAddr,
		RemoteTimeout:     *remoteTO,
		DefaultSolver:     *solverDef,
		WarmStart:         *warm,
		WarmMaxDistance:   *warmMaxDist,
		SimIndexSize:      *simIndex,
		DefaultTimeout:    *timeout,
		MaxBatch:          *maxBatch,
		TraceSample:       *traceSample,
		TraceRecent:       *traceRecent,
		TraceSlowest:      *traceSlow,
	}
	if *delayTarget == "auto" {
		cfg.QueueDelayAuto = true
	} else {
		d, err := time.ParseDuration(*delayTarget)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dtserve: bad -queue-delay-target %q (want a duration or \"auto\")\n", *delayTarget)
			os.Exit(2)
		}
		cfg.QueueDelayTarget = d
	}
	if !*quiet {
		cfg.Logger = logger
	}

	if *chaosSpec != "" {
		ccfg, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			fatal("chaos spec", err)
		}
		if ccfg.DiskErrRate > 0 || ccfg.DiskDelay > 0 {
			cfg.WrapDiskTier = func(under service.DiskTier) service.DiskTier {
				return chaos.NewTier(under, ccfg)
			}
		}
		if ccfg.RemoteErrRate > 0 || ccfg.RemoteDelay > 0 {
			cfg.WrapRemoteTier = func(under service.RemoteTier) service.RemoteTier {
				return chaos.NewRemoteTier(under, ccfg)
			}
		}
		if ccfg.SolverErrRate > 0 || ccfg.SolverDelay > 0 {
			under, err := solver.Get(*solverDef)
			if err != nil {
				fatal("chaos solver", err)
			}
			flaky := chaos.NewFlakySolver("chaos", under, ccfg)
			if err := solver.Register(flaky); err != nil {
				fatal("chaos solver", err)
			}
			cfg.DefaultSolver = flaky.Name()
			logger.Info("chaos: default solver wrapped", "solver", flaky.Name(), "wraps", under.Name())
		}
		logger.Info("chaos: fault injection armed", "spec", *chaosSpec)
	}

	svc, err := service.New(cfg)
	if err != nil {
		fatal("startup", err)
	}
	defer svc.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	// pprof lives on its own mux and listener: profiling endpoints never
	// share the public API address, so exposing the service does not
	// expose heap dumps.
	if *debugAddr != "" {
		debugMux := http.NewServeMux()
		debugMux.HandleFunc("/debug/pprof/", pprof.Index)
		debugMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		debugMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		debugMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		debugMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv := &http.Server{Addr: *debugAddr, Handler: debugMux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener", "err", err)
			}
		}()
		logger.Info("pprof listening", "addr", *debugAddr)
	}

	diskNote := "off"
	if *cacheDir != "" {
		diskNote = *cacheDir
	}
	remoteNote := "off"
	if *remoteAddr != "" {
		remoteNote = *remoteAddr
	}
	logger.Info("listening",
		"addr", *addr,
		"version", buildinfo.Version,
		"default_solver", cfg.DefaultSolver,
		"cache_entries", *cacheSize,
		"disk_tier", diskNote,
		"remote_tier", remoteNote,
		"warm_start", *warm,
		"trace_sample", *traceSample,
	)

	select {
	case err := <-errCh:
		fatal("listen", err)
	case <-ctx.Done():
	}

	// Drain first: healthz flips to 503 so load balancers stop routing,
	// new work is refused with Retry-After, and in-flight NDJSON streams
	// cancel their remaining members and flush what they have. Shutdown
	// then waits for those handlers to finish writing.
	logger.Info("draining")
	svc.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("shutdown", "err", err)
	}
}
