// Command dtserve serves the taskgraph scheduling API over HTTP/JSON:
//
//	dtserve -addr :8080 -workers 8 -cache 4096 -solver portfolio
//
// Endpoints: POST /v1/schedule, POST /v1/schedule/batch (NDJSON streaming
// with "Accept: application/x-ndjson": items flush as their solves
// complete), GET /v1/solvers, GET /healthz, GET /statsz, GET /metrics.
// Solves run on the shared internal/engine worker pool. Identical
// payloads produce byte-identical responses; completed results are
// memoized in a content-addressed LRU cache (cache status in the
// X-DTServe-Cache header), optionally backed by a persistent disk tier
// (-cache-dir) so a restarted server replays its warm set without
// re-solving. SIGINT/SIGTERM drain in-flight requests — and the disk
// tier's write-behind queue — before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dtserve: ")

	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "concurrent solves (0 = one per CPU)")
		cacheSize  = flag.Int("cache", 4096, "result cache capacity in entries (0 disables)")
		cacheBytes = flag.Int64("cache-bytes", 0, "result cache byte budget (0 = 256 MiB)")
		cacheDir   = flag.String("cache-dir", "", "persistent disk cache directory: restarts keep the warm set (empty disables)")
		diskBytes  = flag.Int64("disk-cache-bytes", 0, "disk cache byte budget (0 = 1 GiB)")
		solverDef  = flag.String("solver", "sa", "default solver for requests that name none")
		timeout    = flag.Duration("timeout", 0, "default per-request solve timeout (0 = none)")
		maxBatch   = flag.Int("max-batch", 256, "maximum requests per batch call")
		quiet      = flag.Bool("quiet", false, "disable per-request logging")
	)
	flag.Parse()

	cfg := service.Config{
		Workers:        *workers,
		CacheSize:      *cacheSize,
		CacheBytes:     *cacheBytes,
		CacheDir:       *cacheDir,
		DiskCacheBytes: *diskBytes,
		DefaultSolver:  *solverDef,
		DefaultTimeout: *timeout,
		MaxBatch:       *maxBatch,
	}
	if !*quiet {
		cfg.Logger = log.New(os.Stderr, "dtserve: ", 0)
	}
	svc, err := service.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	diskNote := "disk tier off"
	if *cacheDir != "" {
		diskNote = "disk tier at " + *cacheDir
	}
	log.Printf("listening on %s (default solver %s, %d cache entries, %s)", *addr, *solverDef, *cacheSize, diskNote)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
}
