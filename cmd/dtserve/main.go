// Command dtserve serves the taskgraph scheduling API over HTTP/JSON:
//
//	dtserve -addr :8080 -workers 8 -cache 4096 -solver portfolio
//
// Endpoints: POST /v1/schedule, POST /v1/schedule/batch (NDJSON streaming
// with "Accept: application/x-ndjson": items flush as their solves
// complete), GET /v1/solvers, GET /healthz, GET /statsz, GET /metrics.
// Solves run on the shared internal/engine worker pool, split into an
// interactive lane (single schedule calls) and a batch lane (batch
// members) with weighted dequeue, per-lane admission control (shed
// requests get a structured 429 with Retry-After) and an adaptive
// worker pool bounded by -workers/-max-workers. Identical payloads
// produce byte-identical responses; completed results are memoized in a
// content-addressed LRU cache (cache status in the X-DTServe-Cache
// header), optionally backed by a persistent disk tier (-cache-dir) so
// a restarted server replays its warm set without re-solving.
// SIGINT/SIGTERM put the server in draining mode (healthz reports 503,
// new work is refused with 503 + Retry-After) and flush in-flight
// streams — and the disk tier's write-behind queue — before exiting.
//
// The -chaos flag turns on the fault-injection harness from
// internal/chaos for resilience drills, e.g.
//
//	dtserve -cache-dir /tmp/dt -chaos 'disk-err=0.2,disk-delay=2ms,solver-err=0.05,seed=7'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/service"
	"repro/internal/solver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dtserve: ")

	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "base solver pool size (0 = one per CPU)")
		maxWorkers  = flag.Int("max-workers", 0, "adaptive pool ceiling under queue pressure (0 = fixed at -workers)")
		queueDepth  = flag.Int("queue-depth", 0, "per-lane admission budget in queued jobs (0 = 1024)")
		delayTarget = flag.Duration("queue-delay-target", 0, "shed a lane once its head-of-queue age exceeds this (0 disables)")
		laneWeight  = flag.Int("interactive-weight", 0, "interactive jobs dequeued per batch job when both lanes wait (0 = 4)")
		cacheSize   = flag.Int("cache", 4096, "result cache capacity in entries (0 disables)")
		cacheBytes  = flag.Int64("cache-bytes", 0, "result cache byte budget (0 = 256 MiB)")
		cacheDir    = flag.String("cache-dir", "", "persistent disk cache directory: restarts keep the warm set (empty disables)")
		diskBytes   = flag.Int64("disk-cache-bytes", 0, "disk cache byte budget (0 = 1 GiB)")
		solverDef   = flag.String("solver", "sa", "default solver for requests that name none")
		timeout     = flag.Duration("timeout", 0, "default per-request solve timeout (0 = none)")
		maxBatch    = flag.Int("max-batch", 256, "maximum requests per batch call")
		chaosSpec   = flag.String("chaos", "", "fault-injection spec, e.g. 'disk-err=0.2,disk-delay=2ms,solver-err=0.05,seed=7' (empty disables)")
		quiet       = flag.Bool("quiet", false, "disable per-request logging")
	)
	flag.Parse()

	cfg := service.Config{
		Workers:           *workers,
		MaxWorkers:        *maxWorkers,
		QueueDepth:        *queueDepth,
		QueueDelayTarget:  *delayTarget,
		InteractiveWeight: *laneWeight,
		CacheSize:         *cacheSize,
		CacheBytes:        *cacheBytes,
		CacheDir:          *cacheDir,
		DiskCacheBytes:    *diskBytes,
		DefaultSolver:     *solverDef,
		DefaultTimeout:    *timeout,
		MaxBatch:          *maxBatch,
	}
	if !*quiet {
		cfg.Logger = log.New(os.Stderr, "dtserve: ", 0)
	}

	if *chaosSpec != "" {
		ccfg, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			log.Fatal(err)
		}
		if ccfg.DiskErrRate > 0 || ccfg.DiskDelay > 0 {
			cfg.WrapDiskTier = func(under service.DiskTier) service.DiskTier {
				return chaos.NewTier(under, ccfg)
			}
		}
		if ccfg.SolverErrRate > 0 || ccfg.SolverDelay > 0 {
			under, err := solver.Get(*solverDef)
			if err != nil {
				log.Fatal(err)
			}
			flaky := chaos.NewFlakySolver("chaos", under, ccfg)
			if err := solver.Register(flaky); err != nil {
				log.Fatal(err)
			}
			cfg.DefaultSolver = flaky.Name()
			log.Printf("chaos: default solver is %q wrapping %q", flaky.Name(), under.Name())
		}
		log.Printf("chaos: fault injection armed (%s)", *chaosSpec)
	}

	svc, err := service.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	diskNote := "disk tier off"
	if *cacheDir != "" {
		diskNote = "disk tier at " + *cacheDir
	}
	log.Printf("listening on %s (default solver %s, %d cache entries, %s)", *addr, cfg.DefaultSolver, *cacheSize, diskNote)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Drain first: healthz flips to 503 so load balancers stop routing,
	// new work is refused with Retry-After, and in-flight NDJSON streams
	// cancel their remaining members and flush what they have. Shutdown
	// then waits for those handlers to finish writing.
	log.Printf("draining")
	svc.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
}
