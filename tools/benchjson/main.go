// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so CI can archive benchmark
// results (BENCH_results.json) and track the performance trajectory
// across commits.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem ./... | go run ./tools/benchjson > BENCH_results.json
//
// Standard metrics (ns/op, B/op, allocs/op) and custom b.ReportMetric
// units are both captured.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result holds the parsed metrics of one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// parseLine parses one `BenchmarkX-N  iters  123 ns/op  ...` line; ok is
// false for non-benchmark lines.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters}
	// The remainder alternates "value unit".
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			res.NsPerOp = val
		case "B/op":
			v := val
			res.BytesPerOp = &v
		case "allocs/op":
			v := val
			res.AllocsPerOp = &v
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = val
		}
	}
	return res, true
}

func main() {
	results := []Result{} // encode as [] rather than null when empty
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if res, ok := parseLine(sc.Text()); ok {
			results = append(results, res)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{"benchmarks": results}); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
