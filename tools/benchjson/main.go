// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so CI can archive benchmark
// results (BENCH_results.json) and track the performance trajectory
// across commits.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem ./... | go run ./tools/benchjson > BENCH_results.json
//
// Standard metrics (ns/op, B/op, allocs/op) and custom b.ReportMetric
// units are both captured.
//
// With -compare the tool additionally guards against regressions: the new
// results are checked against a baseline JSON document (typically the
// committed BENCH_results.json) and the process exits non-zero when a
// guarded benchmark regressed — more than -ns-tolerance fractional ns/op
// growth (<= 0 disables the wall-clock check, which is meaningless at
// -benchtime 1x on shared runners), or any allocs/op growth beyond
// -alloc-tolerance (default 0: allocation counts are deterministic, any
// increase is structural). Benchmark names are compared with their
// -GOMAXPROCS suffix stripped, and -guard restricts the guarded set to
// names matching a regular expression.
//
//	go run ./tools/benchjson -compare BENCH_results.json \
//	    -guard 'BenchmarkSimulate' -ns-tolerance 0 < bench.txt > new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result holds the parsed metrics of one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Document is the top-level JSON shape.
type Document struct {
	Benchmarks []Result `json:"benchmarks"`
}

// parseLine parses one `BenchmarkX-N  iters  123 ns/op  ...` line; ok is
// false for non-benchmark lines.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters}
	// The remainder alternates "value unit".
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			res.NsPerOp = val
		case "B/op":
			v := val
			res.BytesPerOp = &v
		case "allocs/op":
			v := val
			res.AllocsPerOp = &v
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = val
		}
	}
	return res, true
}

// gomaxprocsSuffix matches the trailing -N go test appends to benchmark
// names when GOMAXPROCS > 1, so baselines recorded on one machine compare
// against runs on another.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func baseName(name string) string {
	return gomaxprocsSuffix.ReplaceAllString(name, "")
}

// Regression describes one guarded benchmark that got worse.
type Regression struct {
	Name   string
	Metric string  // "ns/op", "allocs/op", "missing", or a custom metric (floors)
	Old    float64 // baseline value — or the required floor
	New    float64
	kind   string // "" (baseline compare), "floor", "floor-missing"
}

func (r Regression) String() string {
	switch {
	case r.kind == "floor":
		return fmt.Sprintf("%s: %s = %.6g below the required floor %.6g",
			r.Name, r.Metric, r.New, r.Old)
	case r.kind == "floor-missing":
		return fmt.Sprintf("%s: benchmark or metric %q missing from this run (floor unenforceable; renamed?)",
			r.Name, r.Metric)
	case r.Metric == "missing":
		return fmt.Sprintf("%s: guarded baseline benchmark absent from this run (renamed or deleted? update the baseline)", r.Name)
	}
	return fmt.Sprintf("%s: %s regressed %.6g -> %.6g (%+.1f%%)",
		r.Name, r.Metric, r.Old, r.New, 100*(r.New-r.Old)/r.Old)
}

// metricFloor is one "name:metric:min" requirement from -metric-floor:
// the named benchmark must report the custom metric at or above min.
// Unlike the baseline compare, floors assert an absolute capability —
// e.g. that warm-started delta solves keep saving annealing stages — so
// they hold even when the baseline itself drifts.
type metricFloor struct {
	name   string
	metric string
	min    float64
}

// parseMetricFloors parses a comma-separated -metric-floor value.
// Benchmark names and metric units may contain "/" but never ":", so the
// triple splits unambiguously.
func parseMetricFloors(spec string) ([]metricFloor, error) {
	if spec == "" {
		return nil, nil
	}
	var out []metricFloor
	for _, part := range strings.Split(spec, ",") {
		f := strings.Split(part, ":")
		if len(f) != 3 || f[0] == "" || f[1] == "" {
			return nil, fmt.Errorf("bad floor %q (want name:metric:min)", part)
		}
		min, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad floor %q: %v", part, err)
		}
		out = append(out, metricFloor{name: f[0], metric: f[1], min: min})
	}
	return out, nil
}

// checkFloors verifies every -metric-floor requirement against the fresh
// results. A missing benchmark or metric fails the floor — otherwise a
// rename would silently disable the guard.
func checkFloors(results []Result, floors []metricFloor) []Regression {
	var regs []Regression
	for _, fl := range floors {
		found := false
		for _, r := range results {
			if baseName(r.Name) != fl.name {
				continue
			}
			found = true
			v, ok := r.Metrics[fl.metric]
			if !ok {
				regs = append(regs, Regression{Name: fl.name, Metric: fl.metric, kind: "floor-missing"})
			} else if v < fl.min {
				regs = append(regs, Regression{Name: fl.name, Metric: fl.metric, Old: fl.min, New: v, kind: "floor"})
			}
			break
		}
		if !found {
			regs = append(regs, Regression{Name: fl.name, Metric: fl.metric, kind: "floor-missing"})
		}
	}
	return regs
}

// compare checks the guarded benchmarks of new against old. A benchmark
// is guarded when its (suffix-stripped) name matches guard; new
// benchmarks with no baseline entry pass freely, but a guarded baseline
// entry that disappeared from the fresh run is itself a failure —
// otherwise deleting or renaming a benchmark would silently disable its
// guard. When comparing a partial run against a full baseline, scope the
// guard with -guard to the benchmarks actually run.
func compare(old, new []Result, guard *regexp.Regexp, nsTolerance, allocTolerance float64) []Regression {
	baseline := make(map[string]Result, len(old))
	for _, r := range old {
		baseline[baseName(r.Name)] = r
	}
	seen := make(map[string]bool, len(new))
	var regs []Regression
	for _, r := range new {
		name := baseName(r.Name)
		seen[name] = true
		if guard != nil && !guard.MatchString(name) {
			continue
		}
		b, ok := baseline[name]
		if !ok {
			continue
		}
		if nsTolerance > 0 && b.NsPerOp > 0 && r.NsPerOp > b.NsPerOp*(1+nsTolerance) {
			regs = append(regs, Regression{Name: name, Metric: "ns/op", Old: b.NsPerOp, New: r.NsPerOp})
		}
		if b.AllocsPerOp != nil && r.AllocsPerOp != nil && *r.AllocsPerOp > *b.AllocsPerOp+allocTolerance {
			regs = append(regs, Regression{Name: name, Metric: "allocs/op", Old: *b.AllocsPerOp, New: *r.AllocsPerOp})
		}
	}
	for _, r := range old {
		name := baseName(r.Name)
		if seen[name] || (guard != nil && !guard.MatchString(name)) {
			continue
		}
		regs = append(regs, Regression{Name: name, Metric: "missing"})
	}
	return regs
}

func run(in io.Reader, out, errOut io.Writer, comparePath, guardExpr string, nsTol, allocTol float64, floorSpec string) int {
	results := []Result{} // encode as [] rather than null when empty
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if res, ok := parseLine(sc.Text()); ok {
			results = append(results, res)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(errOut, "benchjson: %v\n", err)
		return 1
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(Document{Benchmarks: results}); err != nil {
		fmt.Fprintf(errOut, "benchjson: %v\n", err)
		return 1
	}
	floors, err := parseMetricFloors(floorSpec)
	if err != nil {
		fmt.Fprintf(errOut, "benchjson: -metric-floor: %v\n", err)
		return 1
	}
	regs := checkFloors(results, floors)
	if comparePath != "" {
		data, err := os.ReadFile(comparePath)
		if err != nil {
			fmt.Fprintf(errOut, "benchjson: baseline: %v\n", err)
			return 1
		}
		var baseline Document
		if err := json.Unmarshal(data, &baseline); err != nil {
			fmt.Fprintf(errOut, "benchjson: baseline %s: %v\n", comparePath, err)
			return 1
		}
		var guard *regexp.Regexp
		if guardExpr != "" {
			guard, err = regexp.Compile(guardExpr)
			if err != nil {
				fmt.Fprintf(errOut, "benchjson: -guard: %v\n", err)
				return 1
			}
		}
		regs = append(regs, compare(baseline.Benchmarks, results, guard, nsTol, allocTol)...)
	}
	if comparePath == "" && len(floors) == 0 {
		return 0
	}
	if len(regs) == 0 {
		fmt.Fprintf(errOut, "benchjson: no regressions\n")
		return 0
	}
	for _, r := range regs {
		fmt.Fprintf(errOut, "benchjson: REGRESSION %s\n", r)
	}
	return 1
}

func main() {
	comparePath := flag.String("compare", "", "baseline BENCH_results.json to guard against; empty disables comparison")
	guardExpr := flag.String("guard", "", "regexp restricting which benchmarks are guarded (default: all present in the baseline)")
	nsTol := flag.Float64("ns-tolerance", 0.25, "allowed fractional ns/op growth before failing; <= 0 disables the wall-clock check")
	allocTol := flag.Float64("alloc-tolerance", 0, "allowed absolute allocs/op growth before failing")
	floorSpec := flag.String("metric-floor", "", "comma-separated name:metric:min floors a run must meet (e.g. 'BenchmarkWarmStartDelta/warm:stages-saved/op:2000')")
	flag.Parse()
	os.Exit(run(os.Stdin, os.Stdout, os.Stderr, *comparePath, *guardExpr, *nsTol, *allocTol, *floorSpec))
}
