package main

import "testing"

func TestParseLine(t *testing.T) {
	res, ok := parseLine("BenchmarkScheduleSA_NE_Hypercube-8   \t 3\t 2352986 ns/op\t   98781 B/op\t    1142 allocs/op")
	if !ok {
		t.Fatal("benchmark line rejected")
	}
	if res.Name != "BenchmarkScheduleSA_NE_Hypercube-8" || res.Iterations != 3 {
		t.Errorf("header parsed as %+v", res)
	}
	if res.NsPerOp != 2352986 {
		t.Errorf("ns/op = %g", res.NsPerOp)
	}
	if res.BytesPerOp == nil || *res.BytesPerOp != 98781 {
		t.Errorf("B/op = %v", res.BytesPerOp)
	}
	if res.AllocsPerOp == nil || *res.AllocsPerOp != 1142 {
		t.Errorf("allocs/op = %v", res.AllocsPerOp)
	}
}

func TestParseLineCustomMetrics(t *testing.T) {
	res, ok := parseLine("BenchmarkTable2NewtonEuler \t 1 \t 19211637 ns/op \t 10.74 gain%-bus8 \t 37.86 gain%-hc8")
	if !ok {
		t.Fatal("line rejected")
	}
	if res.Metrics["gain%-bus8"] != 10.74 || res.Metrics["gain%-hc8"] != 37.86 {
		t.Errorf("custom metrics = %v", res.Metrics)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"pkg: repro",
		"ok  \trepro\t0.4s",
		"--- BENCH: BenchmarkTable2NewtonEuler",
		"BenchmarkBroken notanumber 12 ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("accepted noise line %q", line)
		}
	}
}
