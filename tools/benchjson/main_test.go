package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	res, ok := parseLine("BenchmarkScheduleSA_NE_Hypercube-8   \t 3\t 2352986 ns/op\t   98781 B/op\t    1142 allocs/op")
	if !ok {
		t.Fatal("benchmark line rejected")
	}
	if res.Name != "BenchmarkScheduleSA_NE_Hypercube-8" || res.Iterations != 3 {
		t.Errorf("header parsed as %+v", res)
	}
	if res.NsPerOp != 2352986 {
		t.Errorf("ns/op = %g", res.NsPerOp)
	}
	if res.BytesPerOp == nil || *res.BytesPerOp != 98781 {
		t.Errorf("B/op = %v", res.BytesPerOp)
	}
	if res.AllocsPerOp == nil || *res.AllocsPerOp != 1142 {
		t.Errorf("allocs/op = %v", res.AllocsPerOp)
	}
}

func TestParseLineCustomMetrics(t *testing.T) {
	res, ok := parseLine("BenchmarkTable2NewtonEuler \t 1 \t 19211637 ns/op \t 10.74 gain%-bus8 \t 37.86 gain%-hc8")
	if !ok {
		t.Fatal("line rejected")
	}
	if res.Metrics["gain%-bus8"] != 10.74 || res.Metrics["gain%-hc8"] != 37.86 {
		t.Errorf("custom metrics = %v", res.Metrics)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"pkg: repro",
		"ok  \trepro\t0.4s",
		"--- BENCH: BenchmarkTable2NewtonEuler",
		"BenchmarkBroken notanumber 12 ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("accepted noise line %q", line)
		}
	}
}

func f(v float64) *float64 { return &v }

func TestBaseNameStripsGomaxprocsSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":         "BenchmarkX",
		"BenchmarkX":           "BenchmarkX",
		"BenchmarkX_NE-16":     "BenchmarkX_NE",
		"BenchmarkTable2-a":    "BenchmarkTable2-a", // non-numeric suffix kept
		"BenchmarkGain%-hc8-4": "BenchmarkGain%-hc8",
	} {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	old := []Result{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: f(10)},
		{Name: "BenchmarkB", NsPerOp: 1000, AllocsPerOp: f(10)},
		{Name: "BenchmarkC", NsPerOp: 1000, AllocsPerOp: f(10)},
	}
	niu := []Result{
		{Name: "BenchmarkA-8", NsPerOp: 1300, AllocsPerOp: f(10)}, // +30% ns
		{Name: "BenchmarkB-8", NsPerOp: 900, AllocsPerOp: f(11)},  // +1 alloc
		{Name: "BenchmarkC-8", NsPerOp: 1200, AllocsPerOp: f(10)}, // within tolerance
		{Name: "BenchmarkNew-8", NsPerOp: 1, AllocsPerOp: f(1)},   // no baseline: ignored
	}
	regs := compare(old, niu, nil, 0.25, 0)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want 2", regs)
	}
	if regs[0].Name != "BenchmarkA" || regs[0].Metric != "ns/op" {
		t.Errorf("first regression = %+v", regs[0])
	}
	if regs[1].Name != "BenchmarkB" || regs[1].Metric != "allocs/op" {
		t.Errorf("second regression = %+v", regs[1])
	}
}

func TestCompareNsToleranceDisabled(t *testing.T) {
	old := []Result{{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: f(10)}}
	niu := []Result{{Name: "BenchmarkA", NsPerOp: 99999, AllocsPerOp: f(10)}}
	if regs := compare(old, niu, nil, 0, 0); len(regs) != 0 {
		t.Fatalf("disabled ns check still flagged %v", regs)
	}
}

func TestCompareGuardRestrictsSet(t *testing.T) {
	old := []Result{
		{Name: "BenchmarkGuarded", AllocsPerOp: f(1)},
		{Name: "BenchmarkFree", AllocsPerOp: f(1)},
	}
	niu := []Result{
		{Name: "BenchmarkGuarded", AllocsPerOp: f(2)},
		{Name: "BenchmarkFree", AllocsPerOp: f(2)},
	}
	regs := compare(old, niu, regexp.MustCompile("^BenchmarkGuarded$"), 0, 0)
	if len(regs) != 1 || regs[0].Name != "BenchmarkGuarded" {
		t.Fatalf("guard did not restrict the set: %v", regs)
	}
}

func TestCompareAllocTolerance(t *testing.T) {
	old := []Result{{Name: "BenchmarkA", AllocsPerOp: f(10)}}
	niu := []Result{{Name: "BenchmarkA", AllocsPerOp: f(12)}}
	if regs := compare(old, niu, nil, 0, 2); len(regs) != 0 {
		t.Fatalf("within-tolerance alloc growth flagged: %v", regs)
	}
	if regs := compare(old, niu, nil, 0, 1); len(regs) != 1 {
		t.Fatalf("beyond-tolerance alloc growth missed: %v", regs)
	}
}

func TestRunCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(baseline, []byte(`{"benchmarks":[{"name":"BenchmarkA","iterations":1,"ns_per_op":1000,"allocs_per_op":5}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader("BenchmarkA-4 \t 1 \t 900 ns/op \t 100 B/op \t 5 allocs/op\n")
	var out, errOut bytes.Buffer
	if code := run(in, &out, &errOut, baseline, "", 0.25, 0, ""); code != 0 {
		t.Fatalf("clean run exited %d: %s", code, errOut.String())
	}
	var doc Document
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil || len(doc.Benchmarks) != 1 {
		t.Fatalf("output JSON: %v %s", err, out.String())
	}

	in = strings.NewReader("BenchmarkA-4 \t 1 \t 900 ns/op \t 100 B/op \t 6 allocs/op\n")
	out.Reset()
	errOut.Reset()
	if code := run(in, &out, &errOut, baseline, "", 0.25, 0, ""); code != 1 {
		t.Fatalf("alloc regression not fatal: %s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "REGRESSION") {
		t.Fatalf("no regression report: %s", errOut.String())
	}
}

func TestCompareFlagsMissingGuardedBenchmark(t *testing.T) {
	old := []Result{
		{Name: "BenchmarkKept", AllocsPerOp: f(1)},
		{Name: "BenchmarkDeleted", AllocsPerOp: f(1)},
		{Name: "BenchmarkUnguardedGone", AllocsPerOp: f(1)},
	}
	niu := []Result{{Name: "BenchmarkKept-4", AllocsPerOp: f(1)}}
	regs := compare(old, niu, regexp.MustCompile("^Benchmark(Kept|Deleted)$"), 0, 0)
	if len(regs) != 1 || regs[0].Name != "BenchmarkDeleted" || regs[0].Metric != "missing" {
		t.Fatalf("missing guarded benchmark not flagged: %v", regs)
	}
	if !strings.Contains(regs[0].String(), "absent") {
		t.Errorf("missing-benchmark message unclear: %s", regs[0])
	}
}

func TestParseMetricFloors(t *testing.T) {
	floors, err := parseMetricFloors("BenchmarkWarmStartDelta/warm:stages-saved/op:2000,BenchmarkX:items/op:1.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(floors) != 2 || floors[0].name != "BenchmarkWarmStartDelta/warm" ||
		floors[0].metric != "stages-saved/op" || floors[0].min != 2000 ||
		floors[1].min != 1.5 {
		t.Fatalf("parsed floors wrong: %+v", floors)
	}
	for _, bad := range []string{"noseparators", "a:b", "a:b:notanumber", ":m:1", "n::1"} {
		if _, err := parseMetricFloors(bad); err == nil {
			t.Errorf("bad floor spec %q accepted", bad)
		}
	}
}

func TestCheckFloors(t *testing.T) {
	results := []Result{
		{Name: "BenchmarkWarm/warm-4", Metrics: map[string]float64{"stages-saved/op": 4400}},
		{Name: "BenchmarkLow-4", Metrics: map[string]float64{"stages-saved/op": 10}},
		{Name: "BenchmarkNoMetric-4"},
	}
	if regs := checkFloors(results, []metricFloor{{name: "BenchmarkWarm/warm", metric: "stages-saved/op", min: 2000}}); len(regs) != 0 {
		t.Fatalf("met floor flagged: %v", regs)
	}
	regs := checkFloors(results, []metricFloor{
		{name: "BenchmarkLow", metric: "stages-saved/op", min: 2000},
		{name: "BenchmarkNoMetric", metric: "stages-saved/op", min: 1},
		{name: "BenchmarkAbsent", metric: "stages-saved/op", min: 1},
	})
	if len(regs) != 3 {
		t.Fatalf("want 3 floor failures, got %v", regs)
	}
	if !strings.Contains(regs[0].String(), "below the required floor") {
		t.Errorf("floor message unclear: %s", regs[0])
	}
	for _, r := range regs[1:] {
		if !strings.Contains(r.String(), "missing") {
			t.Errorf("missing-metric message unclear: %s", r)
		}
	}
}

func TestRunMetricFloorEndToEnd(t *testing.T) {
	in := strings.NewReader("BenchmarkWarmStartDelta/warm-4 \t 10 \t 900 ns/op \t 4435 stages-saved/op\n")
	var out, errOut bytes.Buffer
	if code := run(in, &out, &errOut, "", "", 0.25, 0, "BenchmarkWarmStartDelta/warm:stages-saved/op:2000"); code != 0 {
		t.Fatalf("met floor exited %d: %s", code, errOut.String())
	}
	in = strings.NewReader("BenchmarkWarmStartDelta/warm-4 \t 10 \t 900 ns/op \t 100 stages-saved/op\n")
	out.Reset()
	errOut.Reset()
	if code := run(in, &out, &errOut, "", "", 0.25, 0, "BenchmarkWarmStartDelta/warm:stages-saved/op:2000"); code != 1 {
		t.Fatalf("broken floor not fatal: %s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "REGRESSION") {
		t.Fatalf("no regression report: %s", errOut.String())
	}
}
