// Package repro is the public API of the reproduction of
// D'Hollander & Devis, "Directed Taskgraph Scheduling Using Simulated
// Annealing" (ICPP 1991).
//
// The package re-exports the pieces a downstream user needs to schedule
// directed taskgraphs on multicomputer models:
//
//   - build or generate a taskgraph (NewGraph, the program generators, the
//     random-DAG helpers);
//   - pick a machine (Hypercube, Bus, Ring, Mesh, ... and CommParams);
//   - schedule and simulate with simulated annealing (ScheduleSA) or a
//     list policy (ScheduleHLF, SchedulePolicy);
//   - inspect the result (speedup, Gantt chart, packet reports).
//
// The full implementation lives in the internal packages; see
// PERFORMANCE.md for the engine's hot-path design (the zero-allocation
// annealing contract, buffer reuse, and the parallel restart/experiment
// harness) and its benchmark methodology.
package repro

import (
	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/gantt"
	"repro/internal/list"
	"repro/internal/machsim"
	"repro/internal/optimal"
	"repro/internal/programs"
	"repro/internal/schedule"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// Core model types.
type (
	// Graph is a directed taskgraph: tasks with CPU loads (µs),
	// precedence edges with communication volumes (bits).
	Graph = taskgraph.Graph
	// TaskID identifies a task within a Graph.
	TaskID = taskgraph.TaskID
	// GraphStats summarizes a taskgraph (Table 1 characteristics).
	GraphStats = taskgraph.Stats
	// Topology is a processor interconnection network.
	Topology = topology.Topology
	// CommParams carries bandwidth and the σ/τ overheads of the paper's
	// communication model.
	CommParams = topology.CommParams
	// Result reports a simulated execution.
	Result = machsim.Result
	// Policy decides assignments at every scheduling epoch.
	Policy = machsim.Policy
	// Assignment maps one ready task onto one idle processor.
	Assignment = machsim.Assignment
	// Epoch is the scheduling context a Policy sees.
	Epoch = machsim.Epoch
	// SimOptions configures the execution simulator.
	SimOptions = machsim.Options
	// SAOptions configures the simulated-annealing scheduler.
	SAOptions = core.Options
	// SAScheduler is the paper's staged annealing scheduler.
	SAScheduler = core.Scheduler
	// PacketReport summarizes the annealing of one packet.
	PacketReport = core.PacketReport
	// GanttConfig controls chart rendering.
	GanttConfig = gantt.Config
	// Program couples a benchmark graph builder with its published Table 1
	// characteristics.
	Program = programs.Program
)

// None is the sentinel "no task" value.
const None = taskgraph.None

// NewGraph returns an empty taskgraph with the given name.
func NewGraph(name string) *Graph { return taskgraph.New(name) }

// ReadGraphJSON decodes a taskgraph previously written with
// (*Graph).WriteJSON.
var ReadGraphJSON = taskgraph.ReadJSON

// Machine builders.
var (
	// Hypercube returns a binary d-cube with 2^d processors.
	Hypercube = topology.Hypercube
	// Bus returns the paper's bus (star) topology: a passive shared medium,
	// all pairs one hop apart, one message at a time globally.
	Bus = topology.Bus
	// Star returns the active-hub star (traffic routed through processor 0).
	Star = topology.Star
	// Ring returns a cycle of n processors.
	Ring = topology.Ring
	// Mesh returns a rows × cols 2-D mesh.
	Mesh = topology.Mesh
	// Torus returns a rows × cols 2-D torus.
	Torus = topology.Torus
	// Complete returns the fully connected topology.
	Complete = topology.Complete
	// ChainTopo returns a linear processor array.
	ChainTopo = topology.ChainTopo
	// BinaryTree returns a complete binary tree of processors.
	BinaryTree = topology.BinaryTree
	// CubeConnectedCycles returns the CCC(d) bounded-degree network.
	CubeConnectedCycles = topology.CubeConnectedCycles
	// DeBruijn returns the binary de Bruijn network over 2^d processors.
	DeBruijn = topology.DeBruijn
	// TopologyFromLinks builds a topology from an explicit link list.
	TopologyFromLinks = topology.FromLinks
)

// DefaultCommParams returns the paper's communication parameters:
// 10 Mb/s links, σ = 7 µs, τ = 9 µs.
func DefaultCommParams() CommParams { return topology.DefaultCommParams() }

// DefaultSAOptions returns the scheduler configuration used by the paper
// reproduction: wb = wc = 0.5 and the default annealing engine.
func DefaultSAOptions() SAOptions { return core.DefaultOptions() }

// Benchmark program generators (paper §6, Table 1).
var (
	// NewtonEuler builds the 95-task robot-dynamics graph.
	NewtonEuler = programs.NewtonEuler
	// GaussJordan builds the 111-task linear-solver graph.
	GaussJordan = programs.GaussJordan
	// FFT builds the 73-task transform graph.
	FFT = programs.FFT
	// MatrixMultiply builds the 111-task matrix-product graph.
	MatrixMultiply = programs.MatrixMultiply
	// GrahamAnomaly builds Graham's classic anomaly instance.
	GrahamAnomaly = programs.GrahamAnomaly
	// Programs returns the four benchmark programs with their published
	// characteristics.
	Programs = programs.Catalog
)

// ScheduleSA schedules g on topo with the paper's simulated-annealing
// scheduler and simulates the execution. It returns the simulation result
// and the scheduler, whose Packets method exposes the per-packet annealing
// reports.
func ScheduleSA(g *Graph, topo *Topology, comm CommParams, opt SAOptions, simOpt SimOptions) (*Result, *SAScheduler, error) {
	sched, err := core.NewScheduler(g, topo, comm, opt)
	if err != nil {
		return nil, nil, err
	}
	res, err := machsim.Run(machsim.Model{Graph: g, Topo: topo, Comm: comm}, sched, simOpt)
	if err != nil {
		return nil, nil, err
	}
	return res, sched, nil
}

// ScheduleHLF schedules g with the Highest Level First baseline and
// simulates the execution.
func ScheduleHLF(g *Graph, topo *Topology, comm CommParams, simOpt SimOptions) (*Result, error) {
	hlf, err := list.NewHLF(g)
	if err != nil {
		return nil, err
	}
	return machsim.Run(machsim.Model{Graph: g, Topo: topo, Comm: comm}, hlf, simOpt)
}

// SchedulePolicy schedules g with any custom policy and simulates the
// execution.
func SchedulePolicy(g *Graph, topo *Topology, comm CommParams, p Policy, simOpt SimOptions) (*Result, error) {
	return machsim.Run(machsim.Model{Graph: g, Topo: topo, Comm: comm}, p, simOpt)
}

// NewHLFPolicy returns the Highest Level First policy for custom
// simulation setups.
func NewHLFPolicy(g *Graph) (Policy, error) { return list.NewHLF(g) }

// NewETFPolicy returns the Earliest Task First policy, the strongest
// deterministic, communication-aware list scheduler in the library.
func NewETFPolicy(g *Graph, topo *Topology, comm CommParams) (Policy, error) {
	return list.NewETF(g, topo, comm)
}

// NewFIFOPolicy returns the original-list (task ID order) policy.
func NewFIFOPolicy() Policy { return list.NewFIFO() }

// NewLPTPolicy returns the Longest Processing Time policy.
func NewLPTPolicy(g *Graph) Policy { return list.NewLPT(g) }

// NewMISFPolicy returns the Most Immediate Successors First policy.
func NewMISFPolicy(g *Graph) (Policy, error) { return list.NewMISF(g) }

// NewRandomPolicy returns the random list scheduler (weakest baseline).
func NewRandomPolicy(seed int64) Policy { return list.NewRandom(seed) }

// NewCommAwareHLFPolicy returns HLF with greedy communication-aware
// placement.
func NewCommAwareHLFPolicy(g *Graph, topo *Topology, comm CommParams) (Policy, error) {
	return list.NewCommAwareHLF(g, topo, comm)
}

// NewSAPolicy returns the annealing scheduler as a reusable policy.
func NewSAPolicy(g *Graph, topo *Topology, comm CommParams, opt SAOptions) (*SAScheduler, error) {
	return core.NewScheduler(g, topo, comm, opt)
}

// RenderGantt draws a text Gantt chart of a result recorded with
// SimOptions.RecordGantt.
func RenderGantt(res *Result, nprocs int, cfg GanttConfig) string {
	return gantt.Render(res, nprocs, cfg)
}

// Related assignment problems (paper §3) and exact solving.
type (
	// StaticMapping is a whole-execution task-to-processor assignment
	// produced by the mapping or balancing solvers.
	StaticMapping = assign.Mapping
	// MappingOptions configures SolveMapping (Bollinger & Midkiff '88).
	MappingOptions = assign.MappingOptions
	// BalancingOptions configures SolveBalancing (Hwang & Xu '90).
	BalancingOptions = assign.BalancingOptions
	// OptimalOptions bounds the exact branch-and-bound solver.
	OptimalOptions = optimal.Options
	// OptimalResult reports an exact minimum-makespan solve.
	OptimalResult = optimal.Result
)

// Schedule types: a standalone, serializable schedule representation with
// an independent feasibility checker.
type (
	// Schedule is a placed, timed schedule extracted from a Result.
	Schedule = schedule.Schedule
	// ScheduleEntry is one task's placement and timing.
	ScheduleEntry = schedule.Entry
)

// ExtractSchedule converts a simulation result into a Schedule; its
// Validate method re-checks feasibility against the machine model without
// reusing simulator code.
var ExtractSchedule = schedule.FromResult

// ReadScheduleJSON decodes a schedule written with (*Schedule).WriteJSON.
var ReadScheduleJSON = schedule.ReadJSON

var (
	// SolveMapping solves the mapping problem: NT ≤ NP, one task per
	// processor, minimize total traffic and worst link load.
	SolveMapping = assign.SolveMapping
	// SolveBalancing solves the balancing problem: NT > NP, minimize load
	// deviation plus inter-processor traffic (precedence ignored).
	SolveBalancing = assign.SolveBalancing
	// NewStaticPolicy executes a directed taskgraph under a fixed mapping.
	NewStaticPolicy = assign.NewStaticPolicy
	// OptimalMakespan computes the exact minimum makespan of a small
	// instance on identical processors with free communication.
	OptimalMakespan = optimal.Makespan
)
