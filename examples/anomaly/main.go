// Anomaly: demonstrate the paper's §6b observation that simulated
// annealing "is able to optimally solve the Graham list scheduling
// anomalies". The classic 9-task Graham instance is scheduled on three
// processors by the original task list (which stumbles into the anomaly),
// by HLF, and by simulated annealing; the optimum equals the
// critical-path lower bound.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	g := repro.GrahamAnomaly()
	topo, err := repro.Complete(3)
	if err != nil {
		log.Fatal(err)
	}
	comm := repro.DefaultCommParams().NoComm() // Graham's model has free communication

	lb, err := g.LowerBoundMakespan(topo.N())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Graham anomaly instance: %d tasks on %d processors, lower bound %.0f\n\n",
		g.NumTasks(), topo.N(), lb)

	run := func(name string, p repro.Policy) {
		res, err := repro.SchedulePolicy(g, topo, comm, p, repro.SimOptions{RecordGantt: true})
		if err != nil {
			log.Fatal(err)
		}
		verdict := ""
		if res.Makespan <= lb+1e-9 {
			verdict = "  <- optimal (meets the critical-path bound)"
		}
		fmt.Printf("%-22s makespan %.0f%s\n", name, res.Makespan, verdict)
	}

	run("original list (FIFO)", fifoPolicy{})

	hlf, err := repro.NewHLFPolicy(g)
	if err != nil {
		log.Fatal(err)
	}
	run("HLF", hlf)

	opt := repro.DefaultSAOptions()
	opt.Seed = 1991
	sa, err := repro.NewSAPolicy(g, topo, comm, opt)
	if err != nil {
		log.Fatal(err)
	}
	run("simulated annealing", sa)
}

// fifoPolicy schedules ready tasks in task-ID order — exactly the "given
// list" semantics of Graham's analysis.
type fifoPolicy struct{}

func (fifoPolicy) Name() string { return "FIFO" }

func (fifoPolicy) Assign(ep *repro.Epoch) []repro.Assignment {
	n := len(ep.Ready)
	if n > len(ep.Idle) {
		n = len(ep.Idle)
	}
	out := make([]repro.Assignment, 0, n)
	for k := 0; k < n; k++ {
		out = append(out, repro.Assignment{Task: ep.Ready[k], Proc: ep.Idle[k]})
	}
	return out
}
