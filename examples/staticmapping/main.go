// Static mapping: reproduce the paper's motivation (§3–§4.1) that the
// balancing problem's assumptions break on directed taskgraphs. The
// Gauss-Jordan benchmark is first mapped statically with the
// balancing-problem annealer of Hwang & Xu (precedence ignored), then
// scheduled with the paper's staged annealing algorithm; the simulated
// executions show the staged scheduler adapting to the changing load and
// communication patterns that the static mapping cannot follow.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	g := repro.GaussJordan()
	topo, err := repro.Hypercube(3)
	if err != nil {
		log.Fatal(err)
	}
	comm := repro.DefaultCommParams()

	// The balancing problem: one static assignment for the whole run,
	// minimizing load deviation + distance-weighted traffic.
	mapping, err := repro.SolveBalancing(g, topo, repro.BalancingOptions{Seed: 1991})
	if err != nil {
		log.Fatal(err)
	}
	staticPol, err := repro.NewStaticPolicy(g, mapping.ProcOf)
	if err != nil {
		log.Fatal(err)
	}
	staticRes, err := repro.SchedulePolicy(g, topo, comm, staticPol, repro.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// The baseline list scheduler and the paper's staged SA scheduler.
	hlfRes, err := repro.ScheduleHLF(g, topo, comm, repro.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	opt := repro.DefaultSAOptions()
	opt.Seed = 1991
	saRes, sched, err := repro.ScheduleSA(g, topo, comm, opt, repro.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Gauss-Jordan (%d tasks) on %s, with communication:\n\n", g.NumTasks(), topo.Name())
	fmt.Printf("%-34s %9s %9s\n", "scheduler", "speedup", "messages")
	fmt.Printf("%-34s %9.2f %9d\n", "static balanced mapping (Hwang&Xu)", staticRes.Speedup, staticRes.Messages)
	fmt.Printf("%-34s %9.2f %9d\n", "HLF list scheduler", hlfRes.Speedup, hlfRes.Messages)
	fmt.Printf("%-34s %9.2f %9d\n", "staged annealing (this paper)", saRes.Speedup, saRes.Messages)
	fmt.Printf("\nstaged SA used %d annealing packets (avg %.1f candidates per packet)\n",
		len(sched.Packets()), sched.AvgCandidates())
}
