// Topology sweep: schedule the FFT benchmark across machine sizes and
// shapes to see where communication overhead eats the parallelism — the
// kind of what-if study the library is built for. For each machine the
// annealing scheduler and HLF are compared with communication enabled.
package main

import (
	"fmt"
	"log"

	"repro"
)

type machine struct {
	name string
	topo *repro.Topology
}

func mustMachine(name string, topo *repro.Topology, err error) machine {
	if err != nil {
		log.Fatal(err)
	}
	return machine{name: name, topo: topo}
}

func main() {
	g := repro.FFT()
	comm := repro.DefaultCommParams()

	machines := []machine{}
	add := func(name string, topo *repro.Topology, err error) {
		machines = append(machines, mustMachine(name, topo, err))
	}
	hc2, err := repro.Hypercube(2)
	add("hypercube-4", hc2, err)
	hc3, err := repro.Hypercube(3)
	add("hypercube-8", hc3, err)
	hc4, err := repro.Hypercube(4)
	add("hypercube-16", hc4, err)
	mesh, err := repro.Mesh(4, 4)
	add("mesh-4x4", mesh, err)
	torus, err := repro.Torus(4, 4)
	add("torus-4x4", torus, err)
	ring, err := repro.Ring(16)
	add("ring-16", ring, err)
	bus, err := repro.Bus(16)
	add("bus-16", bus, err)
	full, err := repro.Complete(16)
	add("complete-16", full, err)

	fmt.Println("FFT (73 vector tasks) with communication, SA vs HLF:")
	fmt.Printf("%-14s %6s %6s %9s %9s %8s %9s\n",
		"machine", "procs", "diam", "SA", "HLF", "% gain", "messages")
	for _, m := range machines {
		hlfRes, err := repro.ScheduleHLF(g, m.topo, comm, repro.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		opt := repro.DefaultSAOptions()
		opt.Seed = 42
		saRes, _, err := repro.ScheduleSA(g, m.topo, comm, opt, repro.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		gain := 100 * (saRes.Speedup - hlfRes.Speedup) / hlfRes.Speedup
		fmt.Printf("%-14s %6d %6d %9.2f %9.2f %8.1f %9d\n",
			m.name, m.topo.N(), m.topo.Diameter(), saRes.Speedup, hlfRes.Speedup, gain, saRes.Messages)
	}
}
