// Robotics: schedule the paper's Newton-Euler inverse dynamics taskgraph
// (95 scalar tasks for a 6-joint manipulator) on all three evaluation
// architectures and report the speedup improvement of simulated annealing
// over HLF, with and without communication — a one-program slice of the
// paper's Table 2.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	g := repro.NewtonEuler()
	st, err := g.ComputeStats(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Newton-Euler: %d tasks, avg %.2f µs, C/C ratio %.0f%%, max speedup %.2f\n\n",
		st.Tasks, st.AvgLoad, 100*st.CCRatio, st.MaxSpeedup)

	type machine struct {
		name string
		topo *repro.Topology
	}
	var machines []machine
	if hc, err := repro.Hypercube(3); err == nil {
		machines = append(machines, machine{"hypercube-8", hc})
	}
	if bus, err := repro.Bus(8); err == nil {
		machines = append(machines, machine{"bus-8", bus})
	}
	if ring, err := repro.Ring(9); err == nil {
		machines = append(machines, machine{"ring-9", ring})
	}

	fmt.Printf("%-14s %-10s %8s %8s %8s\n", "architecture", "comm", "SA", "HLF", "% gain")
	for _, m := range machines {
		for _, withComm := range []bool{false, true} {
			comm := repro.DefaultCommParams()
			label := "with"
			if !withComm {
				comm = comm.NoComm()
				label = "without"
			}
			hlfRes, err := repro.ScheduleHLF(g, m.topo, comm, repro.SimOptions{})
			if err != nil {
				log.Fatal(err)
			}
			// Keep the best of a few annealing runs, as one would tune in
			// practice.
			best := 0.0
			for r := 0; r < 3; r++ {
				opt := repro.DefaultSAOptions()
				opt.Seed = int64(1991 + r)
				saRes, _, err := repro.ScheduleSA(g, m.topo, comm, opt, repro.SimOptions{})
				if err != nil {
					log.Fatal(err)
				}
				if saRes.Speedup > best {
					best = saRes.Speedup
				}
			}
			gain := 100 * (best - hlfRes.Speedup) / hlfRes.Speedup
			fmt.Printf("%-14s %-10s %8.2f %8.2f %8.1f\n", m.name, label, best, hlfRes.Speedup, gain)
		}
	}
}
