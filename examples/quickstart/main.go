// Quickstart: build a small taskgraph by hand, schedule it on a
// 4-processor hypercube with simulated annealing, and compare against the
// Highest Level First baseline.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A toy image pipeline: load -> {filter0..filter3} -> combine.
	// Loads in microseconds, edge volumes in bits.
	g := repro.NewGraph("image-pipeline")
	load := g.AddTask("load", 20)
	combine := g.AddTask("combine", 15)
	for i := 0; i < 4; i++ {
		f := g.AddTask(fmt.Sprintf("filter%d", i), 150)
		g.MustAddEdge(load, f, 240)    // a tile of the image
		g.MustAddEdge(f, combine, 240) // the filtered tile
	}
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}

	topo, err := repro.Hypercube(2) // 4 processors
	if err != nil {
		log.Fatal(err)
	}
	comm := repro.DefaultCommParams() // 10 Mb/s, σ = 7 µs, τ = 9 µs

	// Highest Level First baseline.
	hlfRes, err := repro.ScheduleHLF(g, topo, comm, repro.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Simulated annealing (the paper's scheduler).
	opt := repro.DefaultSAOptions()
	opt.Seed = 7
	saRes, sched, err := repro.ScheduleSA(g, topo, comm, opt, repro.SimOptions{RecordGantt: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s\n", g)
	fmt.Printf("HLF: makespan %.1f µs, speedup %.2f, %d messages\n",
		hlfRes.Makespan, hlfRes.Speedup, hlfRes.Messages)
	fmt.Printf("SA:  makespan %.1f µs, speedup %.2f, %d messages (%d annealing packets)\n",
		saRes.Makespan, saRes.Speedup, saRes.Messages, len(sched.Packets()))

	fmt.Println()
	fmt.Print(repro.RenderGantt(saRes, topo.N(), repro.GanttConfig{Width: 100, ShowLegend: true}))
}
