package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// ExampleScheduleSA schedules a fork-join workload on a 4-processor
// hypercube with the paper's annealing scheduler.
func ExampleScheduleSA() {
	g := repro.NewGraph("forkjoin")
	fork := g.AddTask("fork", 5)
	join := g.AddTask("join", 5)
	for i := 0; i < 4; i++ {
		body := g.AddTask(fmt.Sprintf("body%d", i), 100)
		g.MustAddEdge(fork, body, 40)
		g.MustAddEdge(body, join, 40)
	}
	topo, err := repro.Hypercube(2)
	if err != nil {
		log.Fatal(err)
	}
	opt := repro.DefaultSAOptions()
	opt.Seed = 1
	res, _, err := repro.ScheduleSA(g, topo, repro.DefaultCommParams(), opt, repro.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all %d tasks finished: %v\n", g.NumTasks(), res.Makespan > 0)
	fmt.Printf("speedup > 1: %v\n", res.Speedup > 1)
	// Output:
	// all 6 tasks finished: true
	// speedup > 1: true
}

// ExampleGraph_Levels shows the HLF priority computation on a diamond.
func ExampleGraph_Levels() {
	g := repro.NewGraph("diamond")
	a := g.AddTask("A", 2)
	b := g.AddTask("B", 3)
	c := g.AddTask("C", 5)
	d := g.AddTask("D", 1)
	g.MustAddEdge(a, b, 40)
	g.MustAddEdge(a, c, 40)
	g.MustAddEdge(b, d, 40)
	g.MustAddEdge(c, d, 40)
	levels, err := g.Levels()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("level(A)=%g level(B)=%g level(C)=%g level(D)=%g\n",
		levels[a], levels[b], levels[c], levels[d])
	cp, _ := g.CriticalPathLength()
	fmt.Printf("critical path: %g µs\n", cp)
	// Output:
	// level(A)=8 level(B)=4 level(C)=6 level(D)=1
	// critical path: 8 µs
}

// ExampleCommParams_CommCost evaluates the paper's equation (4) with the
// published hardware parameters.
func ExampleCommParams_CommCost() {
	p := repro.DefaultCommParams() // 10 Mb/s, σ = 7 µs, τ = 9 µs
	fmt.Printf("same processor: %.0f µs\n", p.CommCost(0, 40))
	fmt.Printf("neighbors:      %.0f µs\n", p.CommCost(1, 40))
	fmt.Printf("two hops:       %.0f µs\n", p.CommCost(2, 40))
	// Output:
	// same processor: 0 µs
	// neighbors:      11 µs
	// two hops:       24 µs
}

// ExampleOptimalMakespan certifies a small schedule against the exact
// optimum.
func ExampleOptimalMakespan() {
	g := repro.GrahamAnomaly()
	exact, err := repro.OptimalMakespan(g, 3, repro.OptimalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal makespan: %.0f\n", exact.Makespan)
	// Output:
	// optimal makespan: 10
}
