// Benchmarks regenerating every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`):
//
//	BenchmarkTable1                  program characteristics
//	BenchmarkTable2/<prog>           SA vs HLF speedups per program
//	BenchmarkFigure1                 annealing cost trajectories
//	BenchmarkFigure2                 Newton-Euler Gantt chart
//	BenchmarkPackets                 §6a packet statistics
//	BenchmarkAnomaly                 §6b Graham anomaly
//	BenchmarkAblation*               design-choice ablations
//
// The measured numbers (speedups, gains) are attached to the benchmark
// output via ReportMetric; the formatted tables appear with -v through
// b.Log on the first iteration.
package repro_test

import (
	"runtime"
	"testing"

	"repro"
	"repro/internal/expt"
)

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", expt.FormatTable1(rows))
			for _, r := range rows {
				b.ReportMetric(r.MaxSpeedup, "maxSp-"+shortName(r.Program))
			}
		}
	}
}

func shortName(title string) string {
	switch title {
	case "Newton-Euler Inverse Dynamics":
		return "NE"
	case "Gauss-Jordan Linear Solver":
		return "GJ"
	case "Fast Fourier Transform":
		return "FFT"
	case "Matrix Multiply":
		return "MM"
	default:
		return title
	}
}

func benchmarkTable2Program(b *testing.B, key string) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Table2(expt.Table2Config{
			Seed: 1991, Restarts: -1, Programs: []string{key},
			Workers: runtime.GOMAXPROCS(0),
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", expt.FormatTable2(rows))
			for _, r := range rows {
				b.ReportMetric(r.Comm.Gain, "gain%-"+archShort(r.Arch))
			}
		}
	}
}

func archShort(name string) string {
	switch name {
	case "Hypercube (8p)":
		return "hc8"
	case "Bus (8p)":
		return "bus8"
	case "Ring (9p)":
		return "ring9"
	default:
		return name
	}
}

func BenchmarkTable2NewtonEuler(b *testing.B) { benchmarkTable2Program(b, "NE") }

func BenchmarkTable2GaussJordan(b *testing.B) { benchmarkTable2Program(b, "GJ") }

func BenchmarkTable2MatrixMultiply(b *testing.B) { benchmarkTable2Program(b, "MM") }

func BenchmarkTable2FFT(b *testing.B) { benchmarkTable2Program(b, "FFT") }

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := expt.Figure1(1991)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", fig.Plot(100, 20))
			b.ReportMetric(float64(len(fig.Trace)), "iterations")
			b.ReportMetric(float64(fig.Candidates), "candidates")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		chart, res, err := expt.Figure2(1991, 0, 120)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", chart)
			b.ReportMetric(res.Speedup, "speedup")
			b.ReportMetric(float64(res.Messages), "messages")
		}
	}
}

func BenchmarkPackets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ps, err := expt.Packets(1991)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(ps.Packets), "packets")
			b.ReportMetric(ps.AvgCandidates, "candidates/packet")
			b.ReportMetric(ps.AvgIdle, "idleProcs/packet")
		}
	}
}

func BenchmarkAnomaly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := expt.Anomaly(1991)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res)
			b.ReportMetric(res.FIFO, "fifoMakespan")
			b.ReportMetric(res.SA, "saMakespan")
		}
	}
}

func BenchmarkAblationWeights(b *testing.B) {
	archs, err := expt.Architectures()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		pts, err := expt.AblationWeights("NE", archs[2], 1991, 0.1, 0.9, 9)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", expt.FormatWeights("NE", archs[2].Name, pts))
			best := pts[0]
			for _, p := range pts[1:] {
				if p.Speedup > best.Speedup {
					best = p
				}
			}
			b.ReportMetric(best.Wb, "bestWb")
			b.ReportMetric(best.Speedup, "bestSpeedup")
		}
	}
}

func BenchmarkAblationCooling(b *testing.B) {
	archs, err := expt.Architectures()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		pts, err := expt.AblationCooling("NE", archs[0], 1991)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", expt.FormatCooling("NE", archs[0].Name, pts))
		}
	}
}

func BenchmarkAblationRandomGraphs(b *testing.B) {
	archs, err := expt.Architectures()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := expt.AblationRandomGraphs(archs[0], 30, true, 1991)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res)
			b.ReportMetric(res.GainSummary.Mean, "meanGain%")
			b.ReportMetric(float64(res.SAWins), "saWins")
		}
	}
}

// Library micro-benchmarks: the scheduling and simulation hot paths.

func BenchmarkScheduleSA_NE_Hypercube(b *testing.B) {
	g := repro.NewtonEuler()
	topo, err := repro.Hypercube(3)
	if err != nil {
		b.Fatal(err)
	}
	comm := repro.DefaultCommParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := repro.DefaultSAOptions()
		opt.Seed = int64(i)
		if _, _, err := repro.ScheduleSA(g, topo, comm, opt, repro.SimOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleSA_Cooperative anneals the Newton-Euler graph with
// restarts sharing one incumbent (the Table 2 workload shape): dominated
// restarts abandon early at stage barriers, so the restarted solve costs
// less than restarts× the single run while keeping the same winner. The
// abandoned/op metric proves the incumbent rule is actually firing.
func BenchmarkScheduleSA_Cooperative(b *testing.B) {
	g := repro.NewtonEuler()
	topo, err := repro.Hypercube(3)
	if err != nil {
		b.Fatal(err)
	}
	comm := repro.DefaultCommParams()
	abandoned := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := repro.DefaultSAOptions()
		opt.Seed = int64(i)
		opt.Restarts = 4
		opt.Cooperative = true
		_, sched, err := repro.ScheduleSA(g, topo, comm, opt, repro.SimOptions{})
		if err != nil {
			b.Fatal(err)
		}
		abandoned += sched.RestartsAbandoned()
	}
	b.ReportMetric(float64(abandoned)/float64(b.N), "abandoned/op")
}

func BenchmarkScheduleHLF_NE_Hypercube(b *testing.B) {
	g := repro.NewtonEuler()
	topo, err := repro.Hypercube(3)
	if err != nil {
		b.Fatal(err)
	}
	comm := repro.DefaultCommParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.ScheduleHLF(g, topo, comm, repro.SimOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleSA_GJ_Ring(b *testing.B) {
	g := repro.GaussJordan()
	topo, err := repro.Ring(9)
	if err != nil {
		b.Fatal(err)
	}
	comm := repro.DefaultCommParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := repro.DefaultSAOptions()
		opt.Seed = int64(i)
		if _, _, err := repro.ScheduleSA(g, topo, comm, opt, repro.SimOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScalingCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := expt.Scaling("NE", 4, 1991)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", expt.FormatScaling("NE", pts))
			b.ReportMetric(pts[len(pts)-1].SA, "SA-speedup-16p")
		}
	}
}

func BenchmarkPolicyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.PolicyComparison(1991)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", expt.FormatPolicyComparison(rows))
		}
	}
}

func BenchmarkAblationStatic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.AblationStatic(1991)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", expt.FormatStatic(rows))
		}
	}
}

func BenchmarkAblationOptimal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		study, err := expt.AblationOptimal(30, 3, 1991)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", study)
			b.ReportMetric(float64(study.HLFWithin5Pct)/float64(study.Graphs), "hlfWithin5pct")
		}
	}
}
